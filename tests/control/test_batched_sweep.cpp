// Determinism and equivalence of the batched sweep engine: batched sweeps
// must reproduce the serial scan order exactly, and parallel grid
// evaluation must be byte-identical to the single-threaded path.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "src/control/search.h"
#include "src/control/sweep.h"
#include "src/core/scenarios.h"

namespace llama::control {
namespace {

using common::PowerDbm;
using common::Voltage;

/// Deterministic synthetic plant with one global optimum.
PowerProbe gaussian_peak(double vx_star, double vy_star, double width = 8.0) {
  return [=](Voltage vx, Voltage vy) {
    const double dx = vx.value() - vx_star;
    const double dy = vy.value() - vy_star;
    return PowerDbm{-30.0 - (dx * dx + dy * dy) / (width * width) * 10.0};
  };
}

/// Lifts a deterministic point probe into the grid-probe interface.
GridPowerProbe grid_of(PowerProbe probe) {
  return [probe = std::move(probe)](const std::vector<double>& vxs,
                                    const std::vector<double>& vys) {
    PowerGrid grid(vys.size(), std::vector<PowerDbm>(vxs.size()));
    for (std::size_t iy = 0; iy < vys.size(); ++iy)
      for (std::size_t ix = 0; ix < vxs.size(); ++ix)
        grid[iy][ix] = probe(Voltage{vxs[ix]}, Voltage{vys[iy]});
    return grid;
  };
}

/// Lifts a deterministic point probe into the batch-probe interface.
BatchPowerProbe batch_of(PowerProbe probe) {
  return [probe = std::move(probe)](const BiasPairList& points) {
    std::vector<PowerDbm> powers;
    powers.reserve(points.size());
    for (const auto& [vx, vy] : points) powers.push_back(probe(vx, vy));
    return powers;
  };
}

TEST(FullGridSweepBatched, MatchesSerialRunExactly) {
  const PowerProbe probe = gaussian_peak(18.0, 6.0);
  PowerSupply serial_psu;
  PowerSupply batched_psu;
  FullGridSweep serial{serial_psu, {}};
  FullGridSweep batched{batched_psu, {}};

  const SweepResult a = serial.run(probe);
  const SweepResult b = batched.run_batched(grid_of(probe));

  EXPECT_EQ(a.best_vx.value(), b.best_vx.value());
  EXPECT_EQ(a.best_vy.value(), b.best_vy.value());
  EXPECT_EQ(a.best_power.value(), b.best_power.value());
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.time_cost_s, b.time_cost_s);
  ASSERT_EQ(serial.grid_dbm().size(), batched.grid_dbm().size());
  for (std::size_t iy = 0; iy < serial.grid_dbm().size(); ++iy) {
    ASSERT_EQ(serial.grid_dbm()[iy].size(), batched.grid_dbm()[iy].size());
    for (std::size_t ix = 0; ix < serial.grid_dbm()[iy].size(); ++ix)
      EXPECT_EQ(serial.grid_dbm()[iy][ix], batched.grid_dbm()[iy][ix]);
  }
  EXPECT_EQ(serial.vx_values(), batched.vx_values());
  EXPECT_EQ(serial.vy_values(), batched.vy_values());
}

TEST(FullGridSweepBatched, RepeatedRunsDoNotLeakState) {
  const PowerProbe probe = gaussian_peak(18.0, 6.0);
  PowerSupply psu;
  FullGridSweep sweep{psu, {}};
  const SweepResult first = sweep.run(probe);
  const std::size_t rows = sweep.grid_dbm().size();
  const std::size_t cols = sweep.grid_dbm().front().size();

  // A second run (serial or batched) must fully replace the outputs.
  const SweepResult again = sweep.run(probe);
  EXPECT_EQ(sweep.grid_dbm().size(), rows);
  EXPECT_EQ(sweep.grid_dbm().front().size(), cols);
  EXPECT_EQ(sweep.vx_values().size(), cols);
  EXPECT_EQ(sweep.vy_values().size(), rows);
  EXPECT_EQ(first.best_power.value(), again.best_power.value());

  const SweepResult batched = sweep.run_batched(grid_of(probe));
  EXPECT_EQ(sweep.grid_dbm().size(), rows);
  EXPECT_EQ(sweep.grid_dbm().front().size(), cols);
  EXPECT_EQ(first.best_power.value(), batched.best_power.value());
}

TEST(CoarseToFineSweepBatched, MatchesSerialRunExactly) {
  const PowerProbe probe = gaussian_peak(22.5, 9.0);
  PowerSupply serial_psu;
  PowerSupply batched_psu;
  CoarseToFineSweep serial{serial_psu, {}};
  CoarseToFineSweep batched{batched_psu, {}};

  const SweepResult a = serial.run(probe);
  const SweepResult b = batched.run_batched(grid_of(probe));

  EXPECT_EQ(a.best_vx.value(), b.best_vx.value());
  EXPECT_EQ(a.best_vy.value(), b.best_vy.value());
  EXPECT_EQ(a.best_power.value(), b.best_power.value());
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.time_cost_s, b.time_cost_s);
  ASSERT_EQ(serial.trace().size(), batched.trace().size());
  for (std::size_t i = 0; i < serial.trace().size(); ++i) {
    EXPECT_EQ(serial.trace()[i].vx.value(), batched.trace()[i].vx.value());
    EXPECT_EQ(serial.trace()[i].vy.value(), batched.trace()[i].vy.value());
    EXPECT_EQ(serial.trace()[i].power.value(),
              batched.trace()[i].power.value());
  }
}

TEST(RandomSearchBatched, MatchesSerialRunExactly) {
  const PowerProbe probe = gaussian_peak(11.0, 27.0);
  PowerSupply serial_psu;
  PowerSupply batched_psu;
  RandomSearch serial{serial_psu, {}, common::Rng{42}};
  RandomSearch batched{batched_psu, {}, common::Rng{42}};

  const SweepResult a = serial.run(probe);
  const SweepResult b = batched.run_batched(batch_of(probe));
  EXPECT_EQ(a.best_vx.value(), b.best_vx.value());
  EXPECT_EQ(a.best_vy.value(), b.best_vy.value());
  EXPECT_EQ(a.best_power.value(), b.best_power.value());
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.time_cost_s, b.time_cost_s);
}

TEST(SystemGridProbe, ThreadCountDoesNotChangeBytes) {
  // Two identical systems probed with different worker counts must produce
  // byte-identical power grids: every cell is a pure planned evaluation and
  // the analytic measurement consumes no RNG state.
  std::vector<double> axis;
  for (double v = 0.0; v <= 30.0; v += 3.0) axis.push_back(v);

  core::LlamaSystem sys_serial{core::transmissive_mismatch_config()};
  core::LlamaSystem sys_parallel{core::transmissive_mismatch_config()};
  const PowerGrid serial = sys_serial.make_grid_probe(1)(axis, axis);
  const PowerGrid parallel = sys_parallel.make_grid_probe(7)(axis, axis);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t iy = 0; iy < serial.size(); ++iy)
    for (std::size_t ix = 0; ix < serial[iy].size(); ++ix) {
      const double a = serial[iy][ix].value();
      const double b = parallel[iy][ix].value();
      EXPECT_EQ(std::memcmp(&a, &b, sizeof(a)), 0)
          << "cell (" << iy << ", " << ix << ")";
    }
}

TEST(SystemGridProbe, FullGridSweepBatchedIsDeterministicAcrossThreads) {
  core::LlamaSystem sys_a{core::reflective_mismatch_config()};
  core::LlamaSystem sys_b{core::reflective_mismatch_config()};
  PowerSupply psu_a;
  PowerSupply psu_b;
  FullGridSweep::Options opt;
  opt.step = common::Voltage{3.0};
  FullGridSweep sweep_a{psu_a, opt};
  FullGridSweep sweep_b{psu_b, opt};

  const SweepResult a = sweep_a.run_batched(sys_a.make_grid_probe(1));
  const SweepResult b = sweep_b.run_batched(sys_b.make_grid_probe(6));
  EXPECT_EQ(a.best_vx.value(), b.best_vx.value());
  EXPECT_EQ(a.best_vy.value(), b.best_vy.value());
  EXPECT_EQ(a.best_power.value(), b.best_power.value());
  ASSERT_EQ(sweep_a.grid_dbm().size(), sweep_b.grid_dbm().size());
  for (std::size_t iy = 0; iy < sweep_a.grid_dbm().size(); ++iy)
    for (std::size_t ix = 0; ix < sweep_a.grid_dbm()[iy].size(); ++ix)
      EXPECT_EQ(sweep_a.grid_dbm()[iy][ix], sweep_b.grid_dbm()[iy][ix]);
}

TEST(SystemGridProbe, BatchedOptimizationFindsAComparableOptimum) {
  // The batched round reports expected powers (no sampling jitter), so its
  // optimum must sit within the probe noise of the serial round's.
  core::LlamaSystem serial_sys{core::transmissive_mismatch_config()};
  core::LlamaSystem batched_sys{core::transmissive_mismatch_config()};
  const auto serial = serial_sys.optimize_link();
  const auto batched = batched_sys.optimize_link_batched();
  EXPECT_EQ(serial.sweep.probes, batched.sweep.probes);
  EXPECT_NEAR(serial.sweep.best_power.value(),
              batched.sweep.best_power.value(), 1.5);
  // The surface is left programmed at the batched winner.
  EXPECT_EQ(batched_sys.surface().bias_x().value(),
            batched.sweep.best_vx.value());
  EXPECT_EQ(batched_sys.surface().bias_y().value(),
            batched.sweep.best_vy.value());
}

TEST(FastProbes, CachedPointProbeKeepsSequentialSearchesWorking) {
  core::LlamaSystem sys{core::transmissive_mismatch_config()};
  sys.enable_fast_probes();
  PowerSupply psu;
  HillClimb climb{psu, {}};
  const SweepResult r = climb.run(sys.make_probe(0.01));
  EXPECT_GT(r.probes, 0);
  const auto stats = sys.surface().response_cache_stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_GT(stats->misses, 0u);
}

}  // namespace
}  // namespace llama::control
