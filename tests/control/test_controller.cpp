#include "src/control/controller.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/metasurface/designs.h"

namespace llama::control {
namespace {

using common::PowerDbm;
using common::Voltage;

/// A plant whose power landscape depends on the surface bias state, so the
/// controller's surface programming is observable.
struct BiasPlant {
  metasurface::Metasurface* surface = nullptr;
  double peak_vx = 18.0;
  double peak_vy = 6.0;
  double peak_dbm = -25.0;

  [[nodiscard]] PowerDbm measure() const {
    const double dx = surface->bias_x().value() - peak_vx;
    const double dy = surface->bias_y().value() - peak_vy;
    return PowerDbm{peak_dbm - 0.08 * (dx * dx + dy * dy)};
  }

  /// Power the plant would read with the surface programmed at (vx, vy).
  [[nodiscard]] PowerDbm power_at(double vx, double vy) const {
    const double dx = vx - peak_vx;
    const double dy = vy - peak_vy;
    return PowerDbm{peak_dbm - 0.08 * (dx * dx + dy * dy)};
  }
};

struct Fixture {
  metasurface::Metasurface surface = metasurface::Metasurface::llama_prototype();
  PowerSupply supply;
  BiasPlant plant;

  Fixture() { plant.surface = &surface; }

  PowerProbe probe() {
    return [this](Voltage, Voltage) { return plant.measure(); };
  }
};

TEST(Controller, OptimizeFindsTheBiasPeak) {
  Fixture f;
  Controller controller{f.surface, f.supply};
  const OptimizationReport r = controller.optimize(f.probe());
  EXPECT_NEAR(controller.current_vx().value(), f.plant.peak_vx, 4.0);
  EXPECT_NEAR(controller.current_vy().value(), f.plant.peak_vy, 4.0);
  EXPECT_GT(r.improvement.value(), 0.0);
}

TEST(Controller, SurfaceEndsAtWinningBias) {
  Fixture f;
  Controller controller{f.surface, f.supply};
  const OptimizationReport r = controller.optimize(f.probe());
  EXPECT_DOUBLE_EQ(f.surface.bias_x().value(), r.sweep.best_vx.value());
  EXPECT_DOUBLE_EQ(f.surface.bias_y().value(), r.sweep.best_vy.value());
}

TEST(Controller, ReportsBaselineAndImprovement) {
  Fixture f;
  Controller controller{f.surface, f.supply};
  f.surface.set_bias(Voltage{0.0}, Voltage{30.0});  // poor starting point
  const OptimizationReport r = controller.optimize(f.probe());
  EXPECT_NEAR(r.improvement.value(),
              r.sweep.best_power.value() - r.baseline.value(), 1e-9);
  EXPECT_GT(r.improvement.value(), 10.0);
}

TEST(Controller, HealthyLinkDoesNotRetrigger) {
  Fixture f;
  Controller controller{f.surface, f.supply};
  (void)controller.optimize(f.probe());
  const auto followup =
      controller.on_power_report(f.plant.measure(), f.probe());
  EXPECT_FALSE(followup.has_value());
}

TEST(Controller, DegradedLinkRetriggersSweep) {
  Fixture f;
  Controller controller{f.surface, f.supply};
  (void)controller.optimize(f.probe());
  const long switches_before = f.supply.switch_count();
  // The environment shifts: the peak moves, current bias now far off.
  f.plant.peak_vx = 4.0;
  f.plant.peak_vy = 26.0;
  const auto followup =
      controller.on_power_report(f.plant.measure(), f.probe());
  ASSERT_TRUE(followup.has_value());
  EXPECT_GT(f.supply.switch_count(), switches_before);
  EXPECT_NEAR(controller.current_vx().value(), 4.0, 4.0);
  EXPECT_NEAR(controller.current_vy().value(), 26.0, 4.0);
}

TEST(Controller, HysteresisThresholdIsRespected) {
  Fixture f;
  Controller::Options opt;
  opt.reoptimize_threshold = common::GainDb{10.0};
  Controller controller{f.surface, f.supply, opt};
  (void)controller.optimize(f.probe());
  const auto last = controller.last_optimum();
  ASSERT_TRUE(last.has_value());
  // A drop smaller than the threshold is tolerated.
  const auto r1 = controller.on_power_report(
      PowerDbm{last->value() - 5.0}, f.probe());
  EXPECT_FALSE(r1.has_value());
  // A larger drop triggers.
  const auto r2 = controller.on_power_report(
      PowerDbm{last->value() - 15.0}, f.probe());
  EXPECT_TRUE(r2.has_value());
}

TEST(Controller, FirstReportWithoutHistoryOptimizes) {
  Fixture f;
  Controller controller{f.surface, f.supply};
  const auto r = controller.on_power_report(PowerDbm{-60.0}, f.probe());
  EXPECT_TRUE(r.has_value());
}

TEST(Controller, BaselineIsMeasuredAtTheControllersBias) {
  // Regression: the baseline used to be probed without programming the
  // surface, so a surface rebiased behind the controller's back (here: a
  // direct set_bias, in production a codebook path or another controller)
  // made the baseline — and report.improvement — read the desynced bias
  // instead of the controller's (vx_, vy_).
  Fixture f;
  Controller controller{f.surface, f.supply};
  (void)controller.optimize(f.probe());
  const double cvx = controller.current_vx().value();
  const double cvy = controller.current_vy().value();

  // Desync: rebias the surface far from the controller's stored bias.
  f.surface.set_bias(Voltage{0.0}, Voltage{30.0});
  const OptimizationReport r = controller.optimize(f.probe());
  EXPECT_NEAR(r.baseline.value(), f.plant.power_at(cvx, cvy).value(), 1e-9);
  EXPECT_NEAR(r.improvement.value(),
              r.sweep.best_power.value() - f.plant.power_at(cvx, cvy).value(),
              1e-9);
}

TEST(Controller, BatchedBaselineIsMeasuredAtTheControllersBias) {
  // Same regression through optimize_batched, with a baseline probe that —
  // unlike LlamaSystem's — does not program the surface itself.
  Fixture f;
  Controller controller{f.surface, f.supply};
  (void)controller.optimize(f.probe());
  const double cvx = controller.current_vx().value();
  const double cvy = controller.current_vy().value();

  f.surface.set_bias(Voltage{0.0}, Voltage{30.0});
  const GridPowerProbe grid_probe = [&](const std::vector<double>& vxs,
                                        const std::vector<double>& vys) {
    PowerGrid grid(vys.size(), std::vector<PowerDbm>(vxs.size()));
    for (std::size_t iy = 0; iy < vys.size(); ++iy)
      for (std::size_t ix = 0; ix < vxs.size(); ++ix)
        grid[iy][ix] = f.plant.power_at(vxs[ix], vys[iy]);
    return grid;
  };
  const OptimizationReport r =
      controller.optimize_batched(f.probe(), grid_probe);
  EXPECT_NEAR(r.baseline.value(), f.plant.power_at(cvx, cvy).value(), 1e-9);
}

TEST(Controller, HysteresisRearmsOnAWorseOptimumAfterRetune) {
  // After a retune lands on a *worse* optimum (the plant degraded), the
  // hysteresis must track the new last_optimum_ — reports within the
  // threshold of the new, lower optimum must not retrigger even though they
  // sit far below the stale higher one.
  Fixture f;
  Controller controller{f.surface, f.supply};
  (void)controller.optimize(f.probe());
  ASSERT_NEAR(controller.last_optimum()->value(), -25.0, 2.0);

  // The plant degrades: peak moves and the whole landscape drops 20 dB.
  f.plant.peak_vx = 6.0;
  f.plant.peak_vy = 22.0;
  f.plant.peak_dbm = -45.0;
  const auto retune = controller.on_power_report(f.plant.measure(), f.probe());
  ASSERT_TRUE(retune.has_value());
  const double new_optimum = controller.last_optimum()->value();
  ASSERT_NEAR(new_optimum, -45.0, 2.0);

  // 1 dB under the new optimum: inside the 3 dB hysteresis band, no sweep —
  // even though it is ~21 dB below the pre-degradation optimum.
  const auto healthy =
      controller.on_power_report(PowerDbm{new_optimum - 1.0}, f.probe());
  EXPECT_FALSE(healthy.has_value());
  // 4 dB under the new optimum: past the band, sweeps again.
  const auto degraded =
      controller.on_power_report(PowerDbm{new_optimum - 4.0}, f.probe());
  EXPECT_TRUE(degraded.has_value());
}

TEST(Controller, BatchedPowerReportMatchesSerialDecision) {
  Fixture f;
  Controller controller{f.surface, f.supply};
  const GridPowerProbe grid_probe = [&](const std::vector<double>& vxs,
                                        const std::vector<double>& vys) {
    PowerGrid grid(vys.size(), std::vector<PowerDbm>(vxs.size()));
    for (std::size_t iy = 0; iy < vys.size(); ++iy)
      for (std::size_t ix = 0; ix < vxs.size(); ++ix)
        grid[iy][ix] = f.plant.power_at(vxs[ix], vys[iy]);
    return grid;
  };
  // No history: the first report triggers the initial optimization.
  const auto first = controller.on_power_report_batched(
      PowerDbm{-60.0}, f.probe(), grid_probe);
  ASSERT_TRUE(first.has_value());
  // Healthy link: no sweep.
  const auto healthy = controller.on_power_report_batched(
      f.plant.measure(), f.probe(), grid_probe);
  EXPECT_FALSE(healthy.has_value());
}

TEST(Controller, SweepTimeBudgetIsOneSecond) {
  // Paper: N = 2, T = 5 at 50 Hz => 0.02 * 2 * 25 = 1 s per optimization —
  // the "real-time" claim.
  Fixture f;
  Controller controller{f.surface, f.supply};
  const OptimizationReport r = controller.optimize(f.probe());
  EXPECT_NEAR(r.sweep.time_cost_s, 1.0, 1e-9);
}

}  // namespace
}  // namespace llama::control
