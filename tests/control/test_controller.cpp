#include "src/control/controller.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/metasurface/designs.h"

namespace llama::control {
namespace {

using common::PowerDbm;
using common::Voltage;

/// A plant whose power landscape depends on the surface bias state, so the
/// controller's surface programming is observable.
struct BiasPlant {
  metasurface::Metasurface* surface = nullptr;
  double peak_vx = 18.0;
  double peak_vy = 6.0;

  [[nodiscard]] PowerDbm measure() const {
    const double dx = surface->bias_x().value() - peak_vx;
    const double dy = surface->bias_y().value() - peak_vy;
    return PowerDbm{-25.0 - 0.08 * (dx * dx + dy * dy)};
  }
};

struct Fixture {
  metasurface::Metasurface surface = metasurface::Metasurface::llama_prototype();
  PowerSupply supply;
  BiasPlant plant;

  Fixture() { plant.surface = &surface; }

  PowerProbe probe() {
    return [this](Voltage, Voltage) { return plant.measure(); };
  }
};

TEST(Controller, OptimizeFindsTheBiasPeak) {
  Fixture f;
  Controller controller{f.surface, f.supply};
  const OptimizationReport r = controller.optimize(f.probe());
  EXPECT_NEAR(controller.current_vx().value(), f.plant.peak_vx, 4.0);
  EXPECT_NEAR(controller.current_vy().value(), f.plant.peak_vy, 4.0);
  EXPECT_GT(r.improvement.value(), 0.0);
}

TEST(Controller, SurfaceEndsAtWinningBias) {
  Fixture f;
  Controller controller{f.surface, f.supply};
  const OptimizationReport r = controller.optimize(f.probe());
  EXPECT_DOUBLE_EQ(f.surface.bias_x().value(), r.sweep.best_vx.value());
  EXPECT_DOUBLE_EQ(f.surface.bias_y().value(), r.sweep.best_vy.value());
}

TEST(Controller, ReportsBaselineAndImprovement) {
  Fixture f;
  Controller controller{f.surface, f.supply};
  f.surface.set_bias(Voltage{0.0}, Voltage{30.0});  // poor starting point
  const OptimizationReport r = controller.optimize(f.probe());
  EXPECT_NEAR(r.improvement.value(),
              r.sweep.best_power.value() - r.baseline.value(), 1e-9);
  EXPECT_GT(r.improvement.value(), 10.0);
}

TEST(Controller, HealthyLinkDoesNotRetrigger) {
  Fixture f;
  Controller controller{f.surface, f.supply};
  (void)controller.optimize(f.probe());
  const auto followup =
      controller.on_power_report(f.plant.measure(), f.probe());
  EXPECT_FALSE(followup.has_value());
}

TEST(Controller, DegradedLinkRetriggersSweep) {
  Fixture f;
  Controller controller{f.surface, f.supply};
  (void)controller.optimize(f.probe());
  const long switches_before = f.supply.switch_count();
  // The environment shifts: the peak moves, current bias now far off.
  f.plant.peak_vx = 4.0;
  f.plant.peak_vy = 26.0;
  const auto followup =
      controller.on_power_report(f.plant.measure(), f.probe());
  ASSERT_TRUE(followup.has_value());
  EXPECT_GT(f.supply.switch_count(), switches_before);
  EXPECT_NEAR(controller.current_vx().value(), 4.0, 4.0);
  EXPECT_NEAR(controller.current_vy().value(), 26.0, 4.0);
}

TEST(Controller, HysteresisThresholdIsRespected) {
  Fixture f;
  Controller::Options opt;
  opt.reoptimize_threshold = common::GainDb{10.0};
  Controller controller{f.surface, f.supply, opt};
  (void)controller.optimize(f.probe());
  const auto last = controller.last_optimum();
  ASSERT_TRUE(last.has_value());
  // A drop smaller than the threshold is tolerated.
  const auto r1 = controller.on_power_report(
      PowerDbm{last->value() - 5.0}, f.probe());
  EXPECT_FALSE(r1.has_value());
  // A larger drop triggers.
  const auto r2 = controller.on_power_report(
      PowerDbm{last->value() - 15.0}, f.probe());
  EXPECT_TRUE(r2.has_value());
}

TEST(Controller, FirstReportWithoutHistoryOptimizes) {
  Fixture f;
  Controller controller{f.surface, f.supply};
  const auto r = controller.on_power_report(PowerDbm{-60.0}, f.probe());
  EXPECT_TRUE(r.has_value());
}

TEST(Controller, SweepTimeBudgetIsOneSecond) {
  // Paper: N = 2, T = 5 at 50 Hz => 0.02 * 2 * 25 = 1 s per optimization —
  // the "real-time" claim.
  Fixture f;
  Controller controller{f.surface, f.supply};
  const OptimizationReport r = controller.optimize(f.probe());
  EXPECT_NEAR(r.sweep.time_cost_s, 1.0, 1e-9);
}

}  // namespace
}  // namespace llama::control
