#include "src/control/power_supply.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

namespace llama::control {
namespace {

using common::Voltage;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(PowerSupply, DefaultsMatchTektronix2230G) {
  const PowerSupply psu;
  EXPECT_DOUBLE_EQ(psu.max_voltage().value(), 30.0);
  EXPECT_DOUBLE_EQ(psu.switch_rate_hz(), 50.0);
  EXPECT_DOUBLE_EQ(psu.switch_period_s(), 0.02);  // paper: Ts = 0.02 s
}

TEST(PowerSupply, SetOutputsProgramsBothChannels) {
  PowerSupply psu;
  psu.set_outputs(Voltage{12.5}, Voltage{27.0});
  EXPECT_DOUBLE_EQ(psu.output_x().value(), 12.5);
  EXPECT_DOUBLE_EQ(psu.output_y().value(), 27.0);
}

TEST(PowerSupply, EachSwitchCostsOnePeriod) {
  PowerSupply psu;
  for (int i = 0; i < 10; ++i) psu.set_outputs(Voltage{1.0}, Voltage{1.0});
  EXPECT_NEAR(psu.elapsed_s(), 0.2, 1e-12);
  EXPECT_EQ(psu.switch_count(), 10);
}

TEST(PowerSupply, FullGridScanTakesTensOfSeconds) {
  // The paper's motivation for Algorithm 1: a full 0-30 V scan at 1 V steps
  // (31 x 31 combinations at 50 Hz) costs ~19 s of switching alone.
  PowerSupply psu;
  for (int vy = 0; vy <= 30; ++vy)
    for (int vx = 0; vx <= 30; ++vx)
      psu.set_outputs(Voltage{static_cast<double>(vx)},
                      Voltage{static_cast<double>(vy)});
  EXPECT_GT(psu.elapsed_s(), 15.0);
  EXPECT_LT(psu.elapsed_s(), 30.0);
}

TEST(PowerSupply, RejectsOutOfRangeCommands) {
  PowerSupply psu;
  EXPECT_THROW(psu.set_outputs(Voltage{31.0}, Voltage{0.0}),
               SupplyRangeError);
  EXPECT_THROW(psu.set_outputs(Voltage{0.0}, Voltage{-0.1}),
               SupplyRangeError);
  // A failed command must not advance the clock.
  EXPECT_DOUBLE_EQ(psu.elapsed_s(), 0.0);
}

TEST(PowerSupply, RejectsNonPhysicalConstruction) {
  // Contract: non-positive or non-finite instrument parameters are
  // configuration errors (std::invalid_argument), caught at construction —
  // a zero or infinite switch rate would poison switch_period_s() and every
  // airtime account built on it.
  EXPECT_THROW(PowerSupply(Voltage{0.0}, 50.0), std::invalid_argument);
  EXPECT_THROW(PowerSupply(Voltage{-1.0}, 50.0), std::invalid_argument);
  EXPECT_THROW(PowerSupply(Voltage{30.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(PowerSupply(Voltage{30.0}, -50.0), std::invalid_argument);
  EXPECT_THROW(PowerSupply(Voltage{kNaN}, 50.0), std::invalid_argument);
  EXPECT_THROW(PowerSupply(Voltage{kInf}, 50.0), std::invalid_argument);
  EXPECT_THROW(PowerSupply(Voltage{30.0}, kNaN), std::invalid_argument);
  EXPECT_THROW(PowerSupply(Voltage{30.0}, kInf), std::invalid_argument);
}

TEST(PowerSupply, RejectsNaNCommandsWithoutChargingClock) {
  PowerSupply psu;
  psu.set_outputs(Voltage{5.0}, Voltage{7.0});
  EXPECT_THROW(psu.set_outputs(Voltage{kNaN}, Voltage{0.0}),
               SupplyRangeError);
  EXPECT_THROW(psu.set_outputs(Voltage{0.0}, Voltage{kNaN}),
               SupplyRangeError);
  // The rejected commands never reached the instrument: clock and outputs
  // reflect only the one good switch.
  EXPECT_DOUBLE_EQ(psu.elapsed_s(), psu.switch_period_s());
  EXPECT_EQ(psu.switch_count(), 1);
  EXPECT_DOUBLE_EQ(psu.output_x().value(), 5.0);
  EXPECT_DOUBLE_EQ(psu.output_y().value(), 7.0);
}

TEST(PowerSupply, CustomRateChangesPeriod) {
  const PowerSupply fast{Voltage{30.0}, 100.0};
  EXPECT_DOUBLE_EQ(fast.switch_period_s(), 0.01);
}

TEST(PowerSupply, WaitDwellsWithoutSwitching) {
  PowerSupply psu;
  psu.wait(0.3);
  EXPECT_DOUBLE_EQ(psu.elapsed_s(), 0.3);
  EXPECT_EQ(psu.switch_count(), 0);
  psu.wait(0.0);  // zero dwell is a no-op, not an error
  EXPECT_DOUBLE_EQ(psu.elapsed_s(), 0.3);
  EXPECT_THROW(psu.wait(-0.1), std::invalid_argument);
  EXPECT_THROW(psu.wait(kNaN), std::invalid_argument);
  EXPECT_THROW(psu.wait(kInf), std::invalid_argument);
  EXPECT_DOUBLE_EQ(psu.elapsed_s(), 0.3);
}

TEST(PowerSupplyFaults, BrownoutClampsOutputsButHonorsCommand) {
  PowerSupply psu;
  SupplyFaultState faults;
  faults.brownout_clamp = Voltage{10.0};
  psu.set_fault_state(faults);
  psu.set_outputs(Voltage{25.0}, Voltage{8.0});
  // The command is in range and "succeeds", but the rail can only deliver
  // the clamp.
  EXPECT_DOUBLE_EQ(psu.output_x().value(), 10.0);
  EXPECT_DOUBLE_EQ(psu.output_y().value(), 8.0);
  EXPECT_EQ(psu.switch_count(), 1);
  // Clearing the fault state restores full range from the next switch.
  psu.set_fault_state(std::nullopt);
  psu.set_outputs(Voltage{25.0}, Voltage{8.0});
  EXPECT_DOUBLE_EQ(psu.output_x().value(), 25.0);
}

TEST(PowerSupplyFaults, CertainSwitchFailureSpendsPeriodKeepsOutputs) {
  PowerSupply psu;
  psu.set_outputs(Voltage{3.0}, Voltage{4.0});
  SupplyFaultState faults;
  faults.switch_fail_probability = 1.0;
  faults.fault_seed = 0x5EEDULL;
  psu.set_fault_state(faults);
  EXPECT_THROW(psu.set_outputs(Voltage{20.0}, Voltage{20.0}),
               SupplySwitchError);
  // The command went out — its period is spent and counted — but the
  // instrument never acted on it.
  EXPECT_EQ(psu.switch_count(), 2);
  EXPECT_NEAR(psu.elapsed_s(), 2 * psu.switch_period_s(), 1e-12);
  EXPECT_DOUBLE_EQ(psu.output_x().value(), 3.0);
  EXPECT_DOUBLE_EQ(psu.output_y().value(), 4.0);
}

TEST(PowerSupplyFaults, FailureDrawsAreSeededAndStateless) {
  // Two supplies with the same seed replay the same failure pattern; the
  // draw is a pure function of (seed, switch counter).
  const auto pattern = [](std::uint64_t seed) {
    PowerSupply psu;
    SupplyFaultState faults;
    faults.switch_fail_probability = 0.5;
    faults.fault_seed = seed;
    psu.set_fault_state(faults);
    std::vector<bool> lost;
    for (int i = 0; i < 32; ++i) {
      try {
        psu.set_outputs(Voltage{1.0}, Voltage{1.0});
        lost.push_back(false);
      } catch (const SupplySwitchError&) {
        lost.push_back(true);
      }
    }
    return lost;
  };
  const std::vector<bool> a = pattern(0xABCDULL);
  EXPECT_EQ(a, pattern(0xABCDULL));
  EXPECT_NE(a, pattern(0xABCEULL));
  // p = 0.5 over 32 draws: both outcomes must occur.
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), true), 32);
}

TEST(PowerSupplyFaults, SetFaultStateValidatesItsParameters) {
  PowerSupply psu;
  SupplyFaultState faults;
  faults.switch_fail_probability = 1.5;
  EXPECT_THROW(psu.set_fault_state(faults), std::invalid_argument);
  faults.switch_fail_probability = -0.1;
  EXPECT_THROW(psu.set_fault_state(faults), std::invalid_argument);
  faults.switch_fail_probability = kNaN;
  EXPECT_THROW(psu.set_fault_state(faults), std::invalid_argument);
  faults.switch_fail_probability = 0.0;
  faults.brownout_clamp = Voltage{-1.0};
  EXPECT_THROW(psu.set_fault_state(faults), std::invalid_argument);
  faults.brownout_clamp = Voltage{kNaN};
  EXPECT_THROW(psu.set_fault_state(faults), std::invalid_argument);
  faults.brownout_clamp = Voltage{0.0};  // dead rail is a valid fault
  EXPECT_NO_THROW(psu.set_fault_state(faults));
}

TEST(PowerSupplyRetry, HealthySupplyCostsExactlyOneSwitch) {
  PowerSupply psu;
  set_outputs_with_retry(psu, Voltage{12.0}, Voltage{13.0});
  EXPECT_EQ(psu.switch_count(), 1);
  EXPECT_NEAR(psu.elapsed_s(), psu.switch_period_s(), 1e-12);
  EXPECT_DOUBLE_EQ(psu.output_x().value(), 12.0);
  EXPECT_DOUBLE_EQ(psu.output_y().value(), 13.0);
}

TEST(PowerSupplyRetry, RecoversFromTransientFailuresAndChargesBackoff) {
  PowerSupply psu;
  SupplyFaultState faults;
  faults.switch_fail_probability = 0.5;
  faults.fault_seed = 0xFA17ULL;
  psu.set_fault_state(faults);
  SupplyRetryOptions retry;
  retry.max_attempts = 64;  // generous: p=0.5 per try
  set_outputs_with_retry(psu, Voltage{9.0}, Voltage{11.0}, retry);
  EXPECT_DOUBLE_EQ(psu.output_x().value(), 9.0);
  EXPECT_DOUBLE_EQ(psu.output_y().value(), 11.0);
  // Every attempt spent its switch period and every failure also dwelt a
  // backoff — with any failed attempt the clock must exceed the pure
  // switching cost; with none it equals one period.
  const long n = psu.switch_count();
  EXPECT_GE(n, 1);
  if (n > 1)
    EXPECT_GT(psu.elapsed_s(), n * psu.switch_period_s());
  else
    EXPECT_NEAR(psu.elapsed_s(), psu.switch_period_s(), 1e-12);
}

TEST(PowerSupplyRetry, ExhaustedRetriesRethrowWithFullAirtimeAccounted) {
  PowerSupply psu;
  SupplyFaultState faults;
  faults.switch_fail_probability = 1.0;
  faults.fault_seed = 0x1ULL;
  psu.set_fault_state(faults);
  SupplyRetryOptions retry;
  retry.max_attempts = 3;
  retry.initial_backoff_s = 0.05;
  retry.backoff_factor = 2.0;
  retry.max_backoff_s = 0.25;
  EXPECT_THROW(set_outputs_with_retry(psu, Voltage{1.0}, Voltage{2.0}, retry),
               SupplySwitchError);
  // 3 attempts at one period each + backoffs of 0.05 and 0.10 s between
  // them (no dwell after the final failure).
  EXPECT_EQ(psu.switch_count(), 3);
  EXPECT_NEAR(psu.elapsed_s(), 3 * psu.switch_period_s() + 0.05 + 0.10,
              1e-12);
  EXPECT_DOUBLE_EQ(psu.output_x().value(), 0.0);
}

TEST(PowerSupplyRetry, RangeErrorsAreNeverRetried) {
  PowerSupply psu;
  EXPECT_THROW(set_outputs_with_retry(psu, Voltage{31.0}, Voltage{0.0}),
               SupplyRangeError);
  EXPECT_EQ(psu.switch_count(), 0);
  EXPECT_DOUBLE_EQ(psu.elapsed_s(), 0.0);
}

TEST(PowerSupplyRetry, RejectsNonPositiveAttemptBudget) {
  PowerSupply psu;
  SupplyRetryOptions retry;
  retry.max_attempts = 0;
  EXPECT_THROW(set_outputs_with_retry(psu, Voltage{1.0}, Voltage{1.0}, retry),
               std::invalid_argument);
}

}  // namespace
}  // namespace llama::control
