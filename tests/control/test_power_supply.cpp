#include "src/control/power_supply.h"

#include <gtest/gtest.h>

namespace llama::control {
namespace {

using common::Voltage;

TEST(PowerSupply, DefaultsMatchTektronix2230G) {
  const PowerSupply psu;
  EXPECT_DOUBLE_EQ(psu.max_voltage().value(), 30.0);
  EXPECT_DOUBLE_EQ(psu.switch_rate_hz(), 50.0);
  EXPECT_DOUBLE_EQ(psu.switch_period_s(), 0.02);  // paper: Ts = 0.02 s
}

TEST(PowerSupply, SetOutputsProgramsBothChannels) {
  PowerSupply psu;
  psu.set_outputs(Voltage{12.5}, Voltage{27.0});
  EXPECT_DOUBLE_EQ(psu.output_x().value(), 12.5);
  EXPECT_DOUBLE_EQ(psu.output_y().value(), 27.0);
}

TEST(PowerSupply, EachSwitchCostsOnePeriod) {
  PowerSupply psu;
  for (int i = 0; i < 10; ++i) psu.set_outputs(Voltage{1.0}, Voltage{1.0});
  EXPECT_NEAR(psu.elapsed_s(), 0.2, 1e-12);
  EXPECT_EQ(psu.switch_count(), 10);
}

TEST(PowerSupply, FullGridScanTakesTensOfSeconds) {
  // The paper's motivation for Algorithm 1: a full 0-30 V scan at 1 V steps
  // (31 x 31 combinations at 50 Hz) costs ~19 s of switching alone.
  PowerSupply psu;
  for (int vy = 0; vy <= 30; ++vy)
    for (int vx = 0; vx <= 30; ++vx)
      psu.set_outputs(Voltage{static_cast<double>(vx)},
                      Voltage{static_cast<double>(vy)});
  EXPECT_GT(psu.elapsed_s(), 15.0);
  EXPECT_LT(psu.elapsed_s(), 30.0);
}

TEST(PowerSupply, RejectsOutOfRangeCommands) {
  PowerSupply psu;
  EXPECT_THROW(psu.set_outputs(Voltage{31.0}, Voltage{0.0}),
               SupplyRangeError);
  EXPECT_THROW(psu.set_outputs(Voltage{0.0}, Voltage{-0.1}),
               SupplyRangeError);
  // A failed command must not advance the clock.
  EXPECT_DOUBLE_EQ(psu.elapsed_s(), 0.0);
}

TEST(PowerSupply, RejectsNonPhysicalConstruction) {
  EXPECT_THROW(PowerSupply(Voltage{0.0}, 50.0), SupplyRangeError);
  EXPECT_THROW(PowerSupply(Voltage{30.0}, 0.0), SupplyRangeError);
}

TEST(PowerSupply, CustomRateChangesPeriod) {
  const PowerSupply fast{Voltage{30.0}, 100.0};
  EXPECT_DOUBLE_EQ(fast.switch_period_s(), 0.01);
}

}  // namespace
}  // namespace llama::control
