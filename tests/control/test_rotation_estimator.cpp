#include "src/control/rotation_estimator.h"

#include <gtest/gtest.h>

#include <cmath>

namespace llama::control {
namespace {

using common::Angle;
using common::PowerDbm;
using common::Voltage;

/// Synthetic plant for the estimator: the surface rotates the wave by an
/// angle that grows with |Vx - Vy| plus a base offset, and insertion loss
/// grows mildly with rotation. The receiver measures Malus-law power.
struct SyntheticRotator {
  double base_rotation_deg = 4.0;
  double gain_per_volt = 1.5;
  Voltage vx{0.0};
  Voltage vy{0.0};

  [[nodiscard]] double rotation_deg() const {
    return base_rotation_deg +
           gain_per_volt * std::abs(vx.value() - vy.value());
  }

  [[nodiscard]] PowerDbm measure(Angle rx_orientation) const {
    const double wave_deg = rotation_deg();  // wave emerges at this angle
    const double mismatch =
        (wave_deg - rx_orientation.deg()) * 3.14159265358979 / 180.0;
    const double plf = std::max(std::pow(std::cos(mismatch), 2), 1e-4);
    const double insertion_db = 3.0 + 0.03 * rotation_deg();
    return PowerDbm{-20.0 + 10.0 * std::log10(plf) - insertion_db};
  }
};

TEST(OrientationOffset, FoldsIntoZeroNinety) {
  EXPECT_NEAR(orientation_offset(Angle::degrees(10.0), Angle::degrees(50.0))
                  .deg(),
              40.0, 1e-9);
  EXPECT_NEAR(orientation_offset(Angle::degrees(0.0), Angle::degrees(170.0))
                  .deg(),
              10.0, 1e-9);
  EXPECT_NEAR(orientation_offset(Angle::degrees(179.0), Angle::degrees(1.0))
                  .deg(),
              2.0, 1e-9);
}

TEST(OrientationOffset, PiFoldEdges) {
  // Nearly-identical orientations across the pi fold: 179.9 and 0.1 deg are
  // 0.2 deg apart as linear polarizations, not 179.8.
  EXPECT_NEAR(
      orientation_offset(Angle::degrees(179.9), Angle::degrees(0.1)).deg(),
      0.2, 1e-9);
  EXPECT_NEAR(
      orientation_offset(Angle::degrees(0.1), Angle::degrees(179.9)).deg(),
      0.2, 1e-9);
  // The exact 90 deg tie folds to 90 (the maximum possible offset), never 0.
  EXPECT_NEAR(
      orientation_offset(Angle::degrees(0.0), Angle::degrees(90.0)).deg(),
      90.0, 1e-9);
  EXPECT_NEAR(
      orientation_offset(Angle::degrees(45.0), Angle::degrees(135.0)).deg(),
      90.0, 1e-9);
  // Full-period multiples collapse to zero.
  EXPECT_NEAR(
      orientation_offset(Angle::degrees(12.0), Angle::degrees(192.0)).deg(),
      0.0, 1e-9);
  EXPECT_NEAR(
      orientation_offset(Angle::degrees(0.0), Angle::degrees(180.0)).deg(),
      0.0, 1e-9);
}

TEST(RotationEstimator, OrientationScanCoversHalfTurn) {
  RotationEstimator::Options opt;
  opt.orientation_step_deg = 5.0;
  RotationEstimator est{opt};
  SyntheticRotator plant;
  const auto scan = est.orientation_scan(
      [&](Angle o) { return plant.measure(o); });
  EXPECT_EQ(scan.size(), 36u);
  EXPECT_NEAR(scan.front().orientation.deg(), 0.0, 1e-9);
  EXPECT_LT(scan.back().orientation.deg(), 180.0);
}

TEST(RotationEstimator, OrientationScanHasNoNear180Alias) {
  // Regression: accumulating `deg += step` drifts below 180 after ~1/step
  // additions; with a 0.1 deg step the old loop emitted a 1801st sample at
  // ~179.99999999999406 deg — an alias of the 0 deg orientation that can
  // steal the argmax. Index-based angles stop exactly at 179.9.
  RotationEstimator::Options opt;
  opt.orientation_step_deg = 0.1;
  RotationEstimator est{opt};
  const auto scan =
      est.orientation_scan([](Angle) { return PowerDbm{-30.0}; });
  ASSERT_EQ(scan.size(), 1800u);
  for (std::size_t i = 0; i < scan.size(); ++i) {
    EXPECT_DOUBLE_EQ(scan[i].orientation.deg(),
                     static_cast<double>(i) * 0.1)
        << "orientation sample " << i << " drifted off the lattice";
  }
}

TEST(RotationEstimator, BiasSweepVisitsExactLattice) {
  // Regression: the step-2 bias grid was accumulated per axis (`v += step`),
  // so with step 0.1 over [0, 5] most programmed biases sat an ulp or more
  // off the nominal i*step lattice the supply would actually be set to.
  RotationEstimator::Options opt;
  opt.orientation_step_deg = 30.0;
  opt.v_min = Voltage{0.0};
  opt.v_max = Voltage{5.0};
  opt.v_step = Voltage{0.1};
  RotationEstimator est{opt};
  SyntheticRotator plant;
  std::vector<double> seen;
  const BiasSetter set_bias = [&](Voltage vx, Voltage vy) {
    plant.vx = vx;
    plant.vy = vy;
    seen.push_back(vx.value());
    seen.push_back(vy.value());
  };
  (void)est.estimate(set_bias,
                     [&](Angle o) { return plant.measure(o); });
  // 51 lattice points per axis -> 51^2 grid probes plus the step-1/step-3
  // endpoints, all of which must be exact lattice members.
  EXPECT_GE(seen.size(), 2u * 51u * 51u);
  for (double v : seen) {
    const double lattice = std::round(v / 0.1) * 0.1;
    // Exact equality: the drift is a few ulps, inside EXPECT_DOUBLE_EQ's
    // 4-ulp band but off the lattice the supply is nominally programmed to.
    EXPECT_EQ(v, lattice) << "programmed bias " << v
                          << " V is off the 0.1 V lattice";
  }
}

TEST(RotationEstimator, RecoversMinAndMaxRotation) {
  RotationEstimator::Options opt;
  opt.orientation_step_deg = 1.0;
  opt.v_step = Voltage{3.0};
  RotationEstimator est{opt};
  SyntheticRotator plant;
  const RotationEstimate r = est.estimate(
      [&](Voltage vx, Voltage vy) {
        plant.vx = vx;
        plant.vy = vy;
      },
      [&](Angle o) { return plant.measure(o); });
  // The plant's rotation spans 4 deg (Vx == Vy) to 4 + 1.5*30 = 49 deg.
  // The procedure measures rotation RELATIVE to the neutral-bias state
  // (theta0 is found with the surface at 0 V), so the recovered span is
  // [0, 45] degrees.
  EXPECT_NEAR(r.min_rotation.deg(), 0.0, 2.0);
  EXPECT_NEAR(r.max_rotation.deg(), 45.0, 3.0);
}

TEST(RotationEstimator, MinPowerBiasIsMostRotated) {
  RotationEstimator::Options opt;
  opt.orientation_step_deg = 2.0;
  opt.v_step = Voltage{5.0};
  RotationEstimator est{opt};
  SyntheticRotator plant;
  const RotationEstimate r = est.estimate(
      [&](Voltage vx, Voltage vy) {
        plant.vx = vx;
        plant.vy = vy;
      },
      [&](Angle o) { return plant.measure(o); });
  // Weakest power at theta0 occurs when rotation is largest.
  EXPECT_NEAR(std::abs(r.vmin_x.value() - r.vmin_y.value()), 30.0, 1e-9);
  // Strongest when rotation is smallest (Vx == Vy).
  EXPECT_NEAR(std::abs(r.vmax_x.value() - r.vmax_y.value()), 0.0, 1e-9);
}

TEST(RotationEstimator, MinNeverExceedsMax) {
  RotationEstimator est{};
  SyntheticRotator plant;
  const RotationEstimate r = est.estimate(
      [&](Voltage vx, Voltage vy) {
        plant.vx = vx;
        plant.vy = vy;
      },
      [&](Angle o) { return plant.measure(o); });
  EXPECT_LE(r.min_rotation.deg(), r.max_rotation.deg());
}

TEST(RotationEstimator, Theta0FindsMatchedOrientation) {
  RotationEstimator::Options opt;
  opt.orientation_step_deg = 1.0;
  RotationEstimator est{opt};
  SyntheticRotator plant;  // neutral bias rotation = 4 deg
  const RotationEstimate r = est.estimate(
      [&](Voltage vx, Voltage vy) {
        plant.vx = vx;
        plant.vy = vy;
      },
      [&](Angle o) { return plant.measure(o); });
  EXPECT_NEAR(r.theta0.deg(), 4.0, 1.5);
}

TEST(RotationEstimator, RejectsBadOptions) {
  RotationEstimator::Options bad;
  bad.orientation_step_deg = 0.0;
  EXPECT_THROW(RotationEstimator{bad}, std::invalid_argument);
  bad.orientation_step_deg = 2.0;
  bad.v_step = Voltage{0.0};
  EXPECT_THROW(RotationEstimator{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace llama::control
