#include "src/control/scheduler.h"

#include <gtest/gtest.h>

#include <cmath>

namespace llama::control {
namespace {

using common::PowerDbm;
using common::Voltage;

DeviceEntry make_device(const std::string& name, double vx, double vy,
                        double opt_dbm = -20.0, double raw_dbm = -35.0,
                        double weight = 1.0) {
  return DeviceEntry{name,           Voltage{vx},       Voltage{vy},
                     PowerDbm{opt_dbm}, PowerDbm{raw_dbm}, weight};
}

TEST(PolarizationScheduler, CompatibleDevicesShareOneSlot) {
  PolarizationScheduler sched;
  const std::vector<DeviceEntry> devices{
      make_device("a", 10.0, 20.0),
      make_device("b", 11.5, 21.0),  // within the 3 V tolerance of "a"
  };
  const auto slots = sched.build_schedule(devices);
  ASSERT_EQ(slots.size(), 1u);
  EXPECT_EQ(slots[0].device_indices.size(), 2u);
  EXPECT_NEAR(slots[0].slot_fraction, 1.0, 1e-12);
}

TEST(PolarizationScheduler, IncompatibleDevicesSplit) {
  PolarizationScheduler sched;
  const std::vector<DeviceEntry> devices{
      make_device("a", 5.0, 25.0),
      make_device("b", 25.0, 5.0),  // opposite corner of the bias plane
  };
  const auto slots = sched.build_schedule(devices);
  ASSERT_EQ(slots.size(), 2u);
  EXPECT_NEAR(slots[0].slot_fraction + slots[1].slot_fraction, 1.0, 1e-12);
}

TEST(PolarizationScheduler, AirtimeProportionalToTraffic) {
  PolarizationScheduler sched;
  const std::vector<DeviceEntry> devices{
      make_device("heavy", 5.0, 25.0, -20.0, -35.0, /*weight=*/3.0),
      make_device("light", 25.0, 5.0, -20.0, -35.0, /*weight=*/1.0),
  };
  const auto slots = sched.build_schedule(devices);
  ASSERT_EQ(slots.size(), 2u);
  // Heavy device seeds the first slot (descending traffic order).
  EXPECT_NEAR(slots[0].slot_fraction, 0.75, 1e-12);
  EXPECT_NEAR(slots[1].slot_fraction, 0.25, 1e-12);
}

TEST(PolarizationScheduler, ExpectedPowerInterpolatesBySlotShare) {
  PolarizationScheduler sched;
  const std::vector<DeviceEntry> devices{
      make_device("a", 5.0, 25.0, -20.0, -40.0),
      make_device("b", 25.0, 5.0, -20.0, -40.0),
  };
  const auto slots = sched.build_schedule(devices);
  const auto powers = sched.expected_power(devices, slots);
  ASSERT_EQ(powers.size(), 2u);
  // Half airtime optimized (-20 dBm), half raw (-40 dBm): linear-domain
  // mean = (10 uW + 0.1 uW)/2 -> about -23 dBm.
  EXPECT_NEAR(powers[0].value(), -22.96, 0.1);
  // Better than never optimizing, worse than always.
  EXPECT_GT(powers[0].value(), -40.0);
  EXPECT_LT(powers[0].value(), -20.0);
}

TEST(PolarizationScheduler, SingleDeviceGetsFullAirtime) {
  PolarizationScheduler sched;
  const std::vector<DeviceEntry> devices{make_device("solo", 12.0, 18.0)};
  const auto slots = sched.build_schedule(devices);
  ASSERT_EQ(slots.size(), 1u);
  const auto powers = sched.expected_power(devices, slots);
  EXPECT_NEAR(powers[0].value(), -20.0, 1e-9);
}

TEST(PolarizationScheduler, EmptyInputYieldsEmptySchedule) {
  PolarizationScheduler sched;
  EXPECT_TRUE(sched.build_schedule({}).empty());
}

TEST(PolarizationScheduler, ToleranceControlsClustering) {
  PolarizationScheduler::Options strict;
  strict.bias_tolerance = Voltage{0.5};
  PolarizationScheduler tight{strict};
  PolarizationScheduler loose;  // default 3 V
  const std::vector<DeviceEntry> devices{
      make_device("a", 10.0, 10.0),
      make_device("b", 12.0, 12.0),
  };
  EXPECT_EQ(tight.build_schedule(devices).size(), 2u);
  EXPECT_EQ(loose.build_schedule(devices).size(), 1u);
}

TEST(PolarizationScheduler, RejectsNegativeTolerance) {
  PolarizationScheduler::Options bad;
  bad.bias_tolerance = Voltage{-1.0};
  EXPECT_THROW(PolarizationScheduler{bad}, std::invalid_argument);
}

TEST(PolarizationScheduler, ManyDevicesClusterSensibly) {
  PolarizationScheduler sched;
  std::vector<DeviceEntry> devices;
  // Three natural clusters of mounting orientations.
  for (int i = 0; i < 4; ++i)
    devices.push_back(make_device("c1_" + std::to_string(i), 5.0 + i * 0.5,
                                  25.0 - i * 0.5));
  for (int i = 0; i < 3; ++i)
    devices.push_back(make_device("c2_" + std::to_string(i), 15.0 + i * 0.5,
                                  15.0));
  for (int i = 0; i < 3; ++i)
    devices.push_back(
        make_device("c3_" + std::to_string(i), 26.0, 4.0 + i * 0.5));
  const auto slots = sched.build_schedule(devices);
  EXPECT_EQ(slots.size(), 3u);
  std::size_t covered = 0;
  for (const auto& slot : slots) covered += slot.device_indices.size();
  EXPECT_EQ(covered, devices.size());
}

TEST(PolarizationScheduler, UnscheduledDeviceKeepsUnoptimizedPower) {
  // Documented contract: a device absent from every slot has airtime
  // fraction 0 and therefore receives exactly its unoptimized power.
  PolarizationScheduler sched;
  const std::vector<DeviceEntry> devices{
      make_device("in", 10.0, 10.0, -20.0, -40.0),
      make_device("out", 25.0, 5.0, -20.0, -40.0),
  };
  // Hand-built schedule covering only device 0.
  const std::vector<ScheduleSlot> schedule{
      ScheduleSlot{Voltage{10.0}, Voltage{10.0}, {0}, 1.0}};
  const auto powers = sched.expected_power(devices, schedule);
  ASSERT_EQ(powers.size(), 2u);
  EXPECT_NEAR(powers[0].value(), -20.0, 1e-9);
  EXPECT_NEAR(powers[1].value(), -40.0, 1e-9);
}

TEST(PolarizationScheduler, MultiSlotDeviceAccumulatesAirtime) {
  // Hand-built schedules may list one device in several slots; its airtime
  // is the sum of those slots' shares (it runs optimized during each).
  PolarizationScheduler sched;
  const std::vector<DeviceEntry> devices{
      make_device("multi", 10.0, 10.0, -20.0, -40.0)};
  const std::vector<ScheduleSlot> schedule{
      ScheduleSlot{Voltage{10.0}, Voltage{10.0}, {0}, 0.6},
      ScheduleSlot{Voltage{12.0}, Voltage{12.0}, {0}, 0.4}};
  const auto powers = sched.expected_power(devices, schedule);
  ASSERT_EQ(powers.size(), 1u);
  // Full accumulated airtime -> pure optimized power.
  EXPECT_NEAR(powers[0].value(), -20.0, 1e-9);
}

TEST(PolarizationScheduler, RejectsOutOfRangeDeviceIndex) {
  // Regression: the old per-device linear scan silently ignored slots that
  // referenced devices beyond the roster; a corrupt schedule now throws
  // instead of misreporting.
  PolarizationScheduler sched;
  const std::vector<DeviceEntry> devices{make_device("solo", 10.0, 10.0)};
  const std::vector<ScheduleSlot> schedule{
      ScheduleSlot{Voltage{10.0}, Voltage{10.0}, {0, 7}, 1.0}};
  EXPECT_THROW((void)sched.expected_power(devices, schedule),
               std::out_of_range);
}

TEST(PolarizationScheduler, ThousandDeviceScheduleIsConsistent) {
  // Dense-deployment scale: 1k devices spread over the bias plane. The
  // rebuilt device->slot map must agree with the schedule slot-for-slot
  // (and run in O(D + S), not the old O(D^2 * S) scan).
  PolarizationScheduler sched;
  std::vector<DeviceEntry> devices;
  devices.reserve(1000);
  for (int i = 0; i < 1000; ++i) {
    const double vx = static_cast<double>(i % 29);
    const double vy = static_cast<double>((i * 7) % 31);
    devices.push_back(make_device("d" + std::to_string(i), vx, vy, -20.0,
                                  -40.0, 1.0 + (i % 3)));
  }
  const auto slots = sched.build_schedule(devices);
  const auto powers = sched.expected_power(devices, slots);
  ASSERT_EQ(powers.size(), devices.size());

  // Reference: fraction looked up directly from the schedule.
  std::size_t covered = 0;
  for (const ScheduleSlot& slot : slots) {
    for (std::size_t i : slot.device_indices) {
      ++covered;
      const double opt = devices[i].optimized_power.to_mw().value();
      const double raw = devices[i].unoptimized_power.to_mw().value();
      const double expect_mw = slot.slot_fraction * opt +
                               (1.0 - slot.slot_fraction) * raw;
      EXPECT_NEAR(powers[i].to_mw().value(), expect_mw, 1e-12)
          << "device " << i;
    }
  }
  EXPECT_EQ(covered, devices.size());
}

}  // namespace
}  // namespace llama::control
