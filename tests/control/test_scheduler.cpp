#include "src/control/scheduler.h"

#include <gtest/gtest.h>

#include <cmath>

namespace llama::control {
namespace {

using common::PowerDbm;
using common::Voltage;

DeviceEntry make_device(const std::string& name, double vx, double vy,
                        double opt_dbm = -20.0, double raw_dbm = -35.0,
                        double weight = 1.0) {
  return DeviceEntry{name,           Voltage{vx},       Voltage{vy},
                     PowerDbm{opt_dbm}, PowerDbm{raw_dbm}, weight};
}

TEST(PolarizationScheduler, CompatibleDevicesShareOneSlot) {
  PolarizationScheduler sched;
  const std::vector<DeviceEntry> devices{
      make_device("a", 10.0, 20.0),
      make_device("b", 11.5, 21.0),  // within the 3 V tolerance of "a"
  };
  const auto slots = sched.build_schedule(devices);
  ASSERT_EQ(slots.size(), 1u);
  EXPECT_EQ(slots[0].device_indices.size(), 2u);
  EXPECT_NEAR(slots[0].slot_fraction, 1.0, 1e-12);
}

TEST(PolarizationScheduler, IncompatibleDevicesSplit) {
  PolarizationScheduler sched;
  const std::vector<DeviceEntry> devices{
      make_device("a", 5.0, 25.0),
      make_device("b", 25.0, 5.0),  // opposite corner of the bias plane
  };
  const auto slots = sched.build_schedule(devices);
  ASSERT_EQ(slots.size(), 2u);
  EXPECT_NEAR(slots[0].slot_fraction + slots[1].slot_fraction, 1.0, 1e-12);
}

TEST(PolarizationScheduler, AirtimeProportionalToTraffic) {
  PolarizationScheduler sched;
  const std::vector<DeviceEntry> devices{
      make_device("heavy", 5.0, 25.0, -20.0, -35.0, /*weight=*/3.0),
      make_device("light", 25.0, 5.0, -20.0, -35.0, /*weight=*/1.0),
  };
  const auto slots = sched.build_schedule(devices);
  ASSERT_EQ(slots.size(), 2u);
  // Heavy device seeds the first slot (descending traffic order).
  EXPECT_NEAR(slots[0].slot_fraction, 0.75, 1e-12);
  EXPECT_NEAR(slots[1].slot_fraction, 0.25, 1e-12);
}

TEST(PolarizationScheduler, ExpectedPowerInterpolatesBySlotShare) {
  PolarizationScheduler sched;
  const std::vector<DeviceEntry> devices{
      make_device("a", 5.0, 25.0, -20.0, -40.0),
      make_device("b", 25.0, 5.0, -20.0, -40.0),
  };
  const auto slots = sched.build_schedule(devices);
  const auto powers = sched.expected_power(devices, slots);
  ASSERT_EQ(powers.size(), 2u);
  // Half airtime optimized (-20 dBm), half raw (-40 dBm): linear-domain
  // mean = (10 uW + 0.1 uW)/2 -> about -23 dBm.
  EXPECT_NEAR(powers[0].value(), -22.96, 0.1);
  // Better than never optimizing, worse than always.
  EXPECT_GT(powers[0].value(), -40.0);
  EXPECT_LT(powers[0].value(), -20.0);
}

TEST(PolarizationScheduler, SingleDeviceGetsFullAirtime) {
  PolarizationScheduler sched;
  const std::vector<DeviceEntry> devices{make_device("solo", 12.0, 18.0)};
  const auto slots = sched.build_schedule(devices);
  ASSERT_EQ(slots.size(), 1u);
  const auto powers = sched.expected_power(devices, slots);
  EXPECT_NEAR(powers[0].value(), -20.0, 1e-9);
}

TEST(PolarizationScheduler, EmptyInputYieldsEmptySchedule) {
  PolarizationScheduler sched;
  EXPECT_TRUE(sched.build_schedule({}).empty());
}

TEST(PolarizationScheduler, ToleranceControlsClustering) {
  PolarizationScheduler::Options strict;
  strict.bias_tolerance = Voltage{0.5};
  PolarizationScheduler tight{strict};
  PolarizationScheduler loose;  // default 3 V
  const std::vector<DeviceEntry> devices{
      make_device("a", 10.0, 10.0),
      make_device("b", 12.0, 12.0),
  };
  EXPECT_EQ(tight.build_schedule(devices).size(), 2u);
  EXPECT_EQ(loose.build_schedule(devices).size(), 1u);
}

TEST(PolarizationScheduler, RejectsNegativeTolerance) {
  PolarizationScheduler::Options bad;
  bad.bias_tolerance = Voltage{-1.0};
  EXPECT_THROW(PolarizationScheduler{bad}, std::invalid_argument);
}

TEST(PolarizationScheduler, ManyDevicesClusterSensibly) {
  PolarizationScheduler sched;
  std::vector<DeviceEntry> devices;
  // Three natural clusters of mounting orientations.
  for (int i = 0; i < 4; ++i)
    devices.push_back(make_device("c1_" + std::to_string(i), 5.0 + i * 0.5,
                                  25.0 - i * 0.5));
  for (int i = 0; i < 3; ++i)
    devices.push_back(make_device("c2_" + std::to_string(i), 15.0 + i * 0.5,
                                  15.0));
  for (int i = 0; i < 3; ++i)
    devices.push_back(
        make_device("c3_" + std::to_string(i), 26.0, 4.0 + i * 0.5));
  const auto slots = sched.build_schedule(devices);
  EXPECT_EQ(slots.size(), 3u);
  std::size_t covered = 0;
  for (const auto& slot : slots) covered += slot.device_indices.size();
  EXPECT_EQ(covered, devices.size());
}

}  // namespace
}  // namespace llama::control
