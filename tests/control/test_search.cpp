#include "src/control/search.h"

#include <gtest/gtest.h>

#include <cmath>

namespace llama::control {
namespace {

using common::PowerDbm;
using common::Voltage;

PowerProbe gaussian_peak(double vx_star, double vy_star, double width = 8.0) {
  return [=](Voltage vx, Voltage vy) {
    const double dx = vx.value() - vx_star;
    const double dy = vy.value() - vy_star;
    return PowerDbm{-30.0 - (dx * dx + dy * dy) / (width * width) * 10.0};
  };
}

TEST(RandomSearch, FindsDecentPointWithBudget) {
  PowerSupply psu;
  RandomSearch search{psu, {}, common::Rng{1}};
  const SweepResult r = search.run(gaussian_peak(20.0, 10.0));
  EXPECT_EQ(r.probes, 50);
  EXPECT_GT(r.best_power.value(), -34.0);  // within a few dB of the peak
}

TEST(RandomSearch, RespectsVoltageRange) {
  PowerSupply psu;
  RandomSearch::Options opt;
  opt.v_min = Voltage{5.0};
  opt.v_max = Voltage{10.0};
  RandomSearch search{psu, opt, common::Rng{2}};
  const SweepResult r = search.run(gaussian_peak(0.0, 0.0));
  EXPECT_GE(r.best_vx.value(), 5.0);
  EXPECT_LE(r.best_vx.value(), 10.0);
}

TEST(RandomSearch, DeterministicPerSeed) {
  PowerSupply psu1;
  PowerSupply psu2;
  RandomSearch a{psu1, {}, common::Rng{7}};
  RandomSearch b{psu2, {}, common::Rng{7}};
  EXPECT_DOUBLE_EQ(a.run(gaussian_peak(12.0, 8.0)).best_power.value(),
                   b.run(gaussian_peak(12.0, 8.0)).best_power.value());
}

TEST(RandomSearch, RejectsZeroBudget) {
  PowerSupply psu;
  RandomSearch::Options bad;
  bad.probes = 0;
  EXPECT_THROW(RandomSearch(psu, bad, common::Rng{1}),
               std::invalid_argument);
}

TEST(HillClimb, ConvergesOnSmoothLandscape) {
  PowerSupply psu;
  HillClimb climb{psu, {}};
  const SweepResult r = climb.run(gaussian_peak(22.0, 7.0));
  EXPECT_NEAR(r.best_vx.value(), 22.0, 2.0);
  EXPECT_NEAR(r.best_vy.value(), 7.0, 2.0);
}

TEST(HillClimb, StaysWithinBudget) {
  PowerSupply psu;
  HillClimb::Options opt;
  opt.max_probes = 20;
  HillClimb climb{psu, opt};
  const SweepResult r = climb.run(gaussian_peak(5.0, 25.0));
  EXPECT_LE(r.probes, 20);
}

TEST(HillClimb, TimeCostMatchesProbes) {
  PowerSupply psu;
  HillClimb climb{psu, {}};
  const SweepResult r = climb.run(gaussian_peak(15.0, 15.0));
  EXPECT_NEAR(r.time_cost_s, 0.02 * r.probes, 1e-9);
}

TEST(HillClimb, RejectsBadOptions) {
  PowerSupply psu;
  HillClimb::Options bad;
  bad.max_probes = 0;
  EXPECT_THROW(HillClimb(psu, bad), std::invalid_argument);
  bad.max_probes = 10;
  bad.initial_step = Voltage{0.0};
  EXPECT_THROW(HillClimb(psu, bad), std::invalid_argument);
}

TEST(SimulatedAnnealing, FindsNearOptimum) {
  PowerSupply psu;
  SimulatedAnnealing::Options opt;
  opt.max_probes = 80;
  SimulatedAnnealing sa{psu, opt, common::Rng{11}};
  const SweepResult r = sa.run(gaussian_peak(8.0, 24.0));
  EXPECT_GT(r.best_power.value(), -33.0);
}

TEST(SimulatedAnnealing, RejectsBadCooling) {
  PowerSupply psu;
  SimulatedAnnealing::Options bad;
  bad.cooling = 1.5;
  EXPECT_THROW(SimulatedAnnealing(psu, bad, common::Rng{1}),
               std::invalid_argument);
}

/// Property: on the smooth single-peak landscape, the structured searches
/// with the paper's 50-probe budget beat random search on average across
/// peak placements.
class SearchComparison
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(SearchComparison, StructuredBeatsOrMatchesRandom) {
  const auto [px, py] = GetParam();
  // Width 8 matches the breadth of the measured bias landscapes (Fig. 15);
  // much narrower peaks can fall between Algorithm 1's coarse grid points.
  const PowerProbe probe = gaussian_peak(px, py, /*width=*/8.0);
  PowerSupply psu1;
  PowerSupply psu2;
  CoarseToFineSweep alg1{psu1, {}};
  RandomSearch random{psu2, {}, common::Rng{static_cast<std::uint64_t>(
                                    px * 100 + py)}};
  const double alg1_best = alg1.run(probe).best_power.value();
  const double random_best = random.run(probe).best_power.value();
  // Allow a few dB of tolerance: random occasionally gets lucky, and
  // Algorithm 1's refinement window only extends BELOW the coarse winner
  // (paper: Vr_{n+1} = [v - Vs, v]), so a peak just above a coarse grid
  // point can be missed by a small margin.
  EXPECT_GE(alg1_best, random_best - 3.5)
      << "peak at (" << px << ", " << py << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Peaks, SearchComparison,
    ::testing::Values(std::make_pair(6.0, 6.0), std::make_pair(24.0, 6.0),
                      std::make_pair(6.0, 24.0), std::make_pair(24.0, 24.0),
                      std::make_pair(15.0, 15.0)));

}  // namespace
}  // namespace llama::control
