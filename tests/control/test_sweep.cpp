#include "src/control/sweep.h"

#include <gtest/gtest.h>

#include <cmath>

namespace llama::control {
namespace {

using common::PowerDbm;
using common::Voltage;

/// Synthetic plant: a smooth power landscape with one global optimum.
PowerProbe gaussian_peak(double vx_star, double vy_star, double width = 8.0) {
  return [=](Voltage vx, Voltage vy) {
    const double dx = vx.value() - vx_star;
    const double dy = vy.value() - vy_star;
    return PowerDbm{-30.0 - (dx * dx + dy * dy) / (width * width) * 10.0};
  };
}

TEST(CoarseToFineSweep, FindsThePeakWithPaperParameters) {
  PowerSupply psu;
  // Paper: N = 2, T = 5.
  CoarseToFineSweep sweep{psu, {}};
  const SweepResult r = sweep.run(gaussian_peak(18.0, 6.0));
  EXPECT_NEAR(r.best_vx.value(), 18.0, 3.0);
  EXPECT_NEAR(r.best_vy.value(), 6.0, 3.0);
}

TEST(CoarseToFineSweep, ProbeCountIsNTimesTSquared) {
  PowerSupply psu;
  CoarseToFineSweep::Options opt;
  opt.iterations = 2;
  opt.steps_per_axis = 5;
  CoarseToFineSweep sweep{psu, opt};
  const SweepResult r = sweep.run(gaussian_peak(15.0, 15.0));
  EXPECT_EQ(r.probes, 2 * 5 * 5);
}

TEST(CoarseToFineSweep, TimeCostMatchesPaperFormula) {
  // Paper Section 3.3: time cost is 0.02 x N x T^2 seconds.
  PowerSupply psu;
  CoarseToFineSweep::Options opt;
  opt.iterations = 2;
  opt.steps_per_axis = 5;
  CoarseToFineSweep sweep{psu, opt};
  const SweepResult r = sweep.run(gaussian_peak(10.0, 20.0));
  EXPECT_NEAR(r.time_cost_s, 0.02 * 2 * 5 * 5, 1e-9);
}

TEST(CoarseToFineSweep, MuchFasterThanFullScan) {
  PowerSupply psu_fast;
  PowerSupply psu_slow;
  CoarseToFineSweep fast{psu_fast, {}};
  FullGridSweep slow{psu_slow, {}};
  (void)fast.run(gaussian_peak(12.0, 3.0));
  (void)slow.run(gaussian_peak(12.0, 3.0));
  EXPECT_LT(psu_fast.elapsed_s() * 10.0, psu_slow.elapsed_s());
}

TEST(CoarseToFineSweep, SecondIterationRefines) {
  PowerSupply psu1;
  PowerSupply psu2;
  CoarseToFineSweep::Options one;
  one.iterations = 1;
  CoarseToFineSweep::Options two;
  two.iterations = 2;
  const SweepResult r1 = CoarseToFineSweep{psu1, one}.run(
      gaussian_peak(17.3, 7.7, /*width=*/4.0));
  const SweepResult r2 = CoarseToFineSweep{psu2, two}.run(
      gaussian_peak(17.3, 7.7, /*width=*/4.0));
  EXPECT_GE(r2.best_power.value(), r1.best_power.value() - 1e-12);
}

TEST(CoarseToFineSweep, TraceRecordsEveryProbe) {
  PowerSupply psu;
  CoarseToFineSweep sweep{psu, {}};
  const SweepResult r = sweep.run(gaussian_peak(5.0, 5.0));
  EXPECT_EQ(static_cast<int>(sweep.trace().size()), r.probes);
}

TEST(CoarseToFineSweep, StaysWithinVoltageRange) {
  PowerSupply psu;
  CoarseToFineSweep::Options opt;
  opt.v_min = Voltage{0.0};
  opt.v_max = Voltage{30.0};
  CoarseToFineSweep sweep{psu, opt};
  // Peak outside the allowed window: the sweep must still stay inside.
  (void)sweep.run(gaussian_peak(40.0, -5.0));
  for (const SweepSample& s : sweep.trace()) {
    EXPECT_GE(s.vx.value(), 0.0);
    EXPECT_LE(s.vx.value(), 30.0);
    EXPECT_GE(s.vy.value(), 0.0);
    EXPECT_LE(s.vy.value(), 30.0);
  }
}

TEST(CoarseToFineSweep, AllFloorProbesStillReportAProbedBias) {
  // Regression: best_x/best_y used to start at the window corner (x_lo,
  // y_lo), which the i,j in [1,T] grid never probes. A plane whose every
  // probe reads at/below the old -1e9 dBm sentinel then reported an
  // unprobed bias pair and the sentinel power.
  PowerSupply psu;
  CoarseToFineSweep sweep{psu, {}};
  const SweepResult r =
      sweep.run([](Voltage, Voltage) { return PowerDbm{-2e9}; });
  EXPECT_DOUBLE_EQ(r.best_power.value(), -2e9);
  bool probed = false;
  for (const SweepSample& s : sweep.trace())
    if (s.vx.value() == r.best_vx.value() &&
        s.vy.value() == r.best_vy.value())
      probed = true;
  EXPECT_TRUE(probed) << "best (" << r.best_vx.value() << ", "
                      << r.best_vy.value() << ") V was never probed";
  // The corner (v_min, v_min) is not a grid point with default options.
  EXPECT_NE(r.best_vx.value(), 0.0);
  EXPECT_NE(r.best_vy.value(), 0.0);
}

TEST(CoarseToFineSweep, BatchedAllFloorProbesMatchSerial) {
  PowerSupply psu_s;
  PowerSupply psu_b;
  CoarseToFineSweep serial{psu_s, {}};
  CoarseToFineSweep batched{psu_b, {}};
  const SweepResult rs =
      serial.run([](Voltage, Voltage) { return PowerDbm{-2e9}; });
  const SweepResult rb =
      batched.run_batched([](const std::vector<double>& vxs,
                             const std::vector<double>& vys) {
        return PowerGrid(vys.size(),
                         std::vector<PowerDbm>(vxs.size(), PowerDbm{-2e9}));
      });
  EXPECT_DOUBLE_EQ(rs.best_vx.value(), rb.best_vx.value());
  EXPECT_DOUBLE_EQ(rs.best_vy.value(), rb.best_vy.value());
  EXPECT_DOUBLE_EQ(rs.best_power.value(), rb.best_power.value());
}

TEST(CoarseToFineSweep, RejectsBadOptions) {
  PowerSupply psu;
  CoarseToFineSweep::Options bad;
  bad.iterations = 0;
  EXPECT_THROW(CoarseToFineSweep(psu, bad), std::invalid_argument);
  bad.iterations = 2;
  bad.steps_per_axis = 1;
  EXPECT_THROW(CoarseToFineSweep(psu, bad), std::invalid_argument);
  bad.steps_per_axis = 5;
  bad.v_max = Voltage{0.0};
  EXPECT_THROW(CoarseToFineSweep(psu, bad), std::invalid_argument);
}

TEST(FullGridSweep, GridDimensionsMatchRangeAndStep) {
  PowerSupply psu;
  FullGridSweep::Options opt;
  opt.v_min = Voltage{0.0};
  opt.v_max = Voltage{30.0};
  opt.step = Voltage{5.0};
  FullGridSweep sweep{psu, opt};
  (void)sweep.run(gaussian_peak(10.0, 10.0));
  EXPECT_EQ(sweep.vx_values().size(), 7u);
  EXPECT_EQ(sweep.vy_values().size(), 7u);
  EXPECT_EQ(sweep.grid_dbm().size(), 7u);
  EXPECT_EQ(sweep.grid_dbm()[0].size(), 7u);
}

TEST(FullGridSweep, FindsExactGridOptimum) {
  PowerSupply psu;
  FullGridSweep::Options opt;
  opt.step = Voltage{1.0};
  FullGridSweep sweep{psu, opt};
  const SweepResult r = sweep.run(gaussian_peak(22.0, 9.0));
  EXPECT_DOUBLE_EQ(r.best_vx.value(), 22.0);
  EXPECT_DOUBLE_EQ(r.best_vy.value(), 9.0);
}

TEST(FullGridSweep, GridValuesMatchProbe) {
  PowerSupply psu;
  FullGridSweep::Options opt;
  opt.step = Voltage{10.0};
  FullGridSweep sweep{psu, opt};
  const PowerProbe probe = gaussian_peak(0.0, 0.0);
  (void)sweep.run(probe);
  EXPECT_NEAR(sweep.grid_dbm()[0][0],
              probe(Voltage{0.0}, Voltage{0.0}).value(), 1e-12);
  EXPECT_NEAR(sweep.grid_dbm()[3][3],
              probe(Voltage{30.0}, Voltage{30.0}).value(), 1e-12);
}

TEST(FullGridSweep, AxesAreExactIndexLattice) {
  // Regression: the axes were accumulated (`v += step`), drifting by an ulp
  // per addition — with step 0.1 over [0, 5], 41 of the 51 points sat off
  // the nominal lo + i*step lattice.
  PowerSupply psu;
  FullGridSweep::Options opt;
  opt.v_min = Voltage{0.0};
  opt.v_max = Voltage{5.0};
  opt.step = Voltage{0.1};
  FullGridSweep sweep{psu, opt};
  (void)sweep.run(gaussian_peak(2.0, 2.0));
  ASSERT_EQ(sweep.vx_values().size(), 51u);
  for (std::size_t i = 0; i < sweep.vx_values().size(); ++i) {
    // Exact equality, not EXPECT_DOUBLE_EQ: the accumulation drift is a few
    // ulps — inside gtest's 4-ulp "almost equal" band, but enough to program
    // a supply voltage that differs from the reported axis label.
    EXPECT_EQ(sweep.vx_values()[i], static_cast<double>(i) * 0.1)
        << "axis point " << i << " drifted off the lattice";
  }
  EXPECT_EQ(sweep.vx_values().back(), 5.0);
}

TEST(FullGridSweep, AllFloorProbesStillReportAProbedBias) {
  PowerSupply psu;
  FullGridSweep::Options opt;
  opt.v_min = Voltage{10.0};
  opt.v_max = Voltage{20.0};
  opt.step = Voltage{5.0};
  FullGridSweep sweep{psu, opt};
  const SweepResult r =
      sweep.run([](Voltage, Voltage) { return PowerDbm{-2e9}; });
  // Pre-fix this reported the SweepResult default (0, 0) V — outside the
  // sweep window entirely — with the -1e9 sentinel as the power.
  EXPECT_DOUBLE_EQ(r.best_vx.value(), 10.0);
  EXPECT_DOUBLE_EQ(r.best_vy.value(), 10.0);
  EXPECT_DOUBLE_EQ(r.best_power.value(), -2e9);
}

TEST(FullGridSweep, RejectsBadOptions) {
  PowerSupply psu;
  FullGridSweep::Options bad;
  bad.step = Voltage{0.0};
  EXPECT_THROW(FullGridSweep(psu, bad), std::invalid_argument);
}

/// Property: for any peak location on the grid, Algorithm 1 with paper
/// parameters lands within one coarse step of the optimum.
class SweepConvergence
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(SweepConvergence, LandsNearPeak) {
  const auto [px, py] = GetParam();
  PowerSupply psu;
  CoarseToFineSweep sweep{psu, {}};
  const SweepResult r = sweep.run(gaussian_peak(px, py));
  // Coarse step is 6 V; the refinement narrows further unless the peak sits
  // at the range edge.
  EXPECT_NEAR(r.best_vx.value(), px, 6.0);
  EXPECT_NEAR(r.best_vy.value(), py, 6.0);
}

INSTANTIATE_TEST_SUITE_P(
    PeakLocations, SweepConvergence,
    ::testing::Values(std::make_pair(3.0, 3.0), std::make_pair(27.0, 27.0),
                      std::make_pair(3.0, 27.0), std::make_pair(27.0, 3.0),
                      std::make_pair(15.0, 15.0), std::make_pair(8.0, 22.0),
                      std::make_pair(29.0, 1.0)));

}  // namespace
}  // namespace llama::control
