#include "src/control/synchronization.h"

#include <gtest/gtest.h>

namespace llama::control {
namespace {

using common::Voltage;

SampleVoltageSync make_sync(double td = 0.0) {
  VoltageRamp x{Voltage{0.0}, Voltage{1.0}, 0.02};
  VoltageRamp y{Voltage{5.0}, Voltage{2.0}, 0.02};
  return SampleVoltageSync{x, y, td};
}

TEST(SampleVoltageSync, Eq13AtKnownTimes) {
  const SampleVoltageSync sync = make_sync();
  // Paper Eq. 13: V(t) = V0 + VD/Ts * (t - td).
  EXPECT_NEAR(sync.voltage_x_at(0.0).value(), 0.0, 1e-12);
  EXPECT_NEAR(sync.voltage_x_at(0.02).value(), 1.0, 1e-12);
  EXPECT_NEAR(sync.voltage_x_at(0.1).value(), 5.0, 1e-12);
  EXPECT_NEAR(sync.voltage_y_at(0.1).value(), 5.0 + 2.0 * 5.0, 1e-12);
}

TEST(SampleVoltageSync, StartOffsetShiftsTheMapping) {
  const SampleVoltageSync sync = make_sync(/*td=*/0.05);
  EXPECT_NEAR(sync.voltage_x_at(0.05).value(), 0.0, 1e-12);
  EXPECT_NEAR(sync.voltage_x_at(0.07).value(), 1.0, 1e-12);
}

TEST(SampleVoltageSync, StepIndexFloorsElapsedPeriods) {
  const SampleVoltageSync sync = make_sync();
  EXPECT_EQ(sync.step_index_at(0.0), 0);
  EXPECT_EQ(sync.step_index_at(0.019), 0);
  EXPECT_EQ(sync.step_index_at(0.021), 1);
  EXPECT_EQ(sync.step_index_at(0.399), 19);
}

TEST(SampleVoltageSync, NegativeTimeGivesNegativeStep) {
  const SampleVoltageSync sync = make_sync(/*td=*/0.1);
  EXPECT_LT(sync.step_index_at(0.0), 0);
}

TEST(SampleVoltageSync, QuantizedMatchesStaircase) {
  const SampleVoltageSync sync = make_sync();
  // Mid-step the quantized value holds the step's programmed voltage.
  EXPECT_NEAR(sync.quantized_x_at(0.031).value(), 1.0, 1e-12);
  EXPECT_NEAR(sync.quantized_y_at(0.031).value(), 7.0, 1e-12);
}

TEST(SampleVoltageSync, TimeOfStepInvertsStepIndex) {
  const SampleVoltageSync sync = make_sync(/*td=*/0.013);
  for (long k : {0L, 1L, 7L, 42L}) {
    const double t = sync.time_of_step(k);
    EXPECT_EQ(sync.step_index_at(t + 1e-9), k);
  }
}

TEST(SampleVoltageSync, LabelingIsConsistentAcrossAxes) {
  // Both axes switch simultaneously in the paper's sweep; the labels at the
  // same instant must correspond to the same step index.
  const SampleVoltageSync sync = make_sync();
  const double t = 0.137;
  const long k = sync.step_index_at(t);
  EXPECT_NEAR(sync.quantized_x_at(t).value(),
              0.0 + 1.0 * static_cast<double>(k), 1e-12);
  EXPECT_NEAR(sync.quantized_y_at(t).value(),
              5.0 + 2.0 * static_cast<double>(k), 1e-12);
}

TEST(SampleVoltageSync, RejectsNonPositivePeriod) {
  VoltageRamp bad{Voltage{0.0}, Voltage{1.0}, 0.0};
  VoltageRamp ok{Voltage{0.0}, Voltage{1.0}, 0.02};
  EXPECT_THROW(SampleVoltageSync(bad, ok, 0.0), std::invalid_argument);
  EXPECT_THROW(SampleVoltageSync(ok, bad, 0.0), std::invalid_argument);
}

/// Property: recovering the voltage label of a sample taken anywhere inside
/// step k yields the programmed voltage of step k — the invariant the
/// paper's dedicated-hardware-free synchronization relies on.
class SyncLabeling : public ::testing::TestWithParam<double> {};

TEST_P(SyncLabeling, MidStepSamplesLabelCorrectly) {
  const double frac = GetParam();  // position inside the step (0..1)
  const SampleVoltageSync sync = make_sync(/*td=*/0.004);
  for (long k = 0; k < 30; ++k) {
    const double t = sync.time_of_step(k) + frac * 0.02;
    EXPECT_EQ(sync.step_index_at(t), k) << "k=" << k << " frac=" << frac;
  }
}

INSTANTIATE_TEST_SUITE_P(IntraStepPositions, SyncLabeling,
                         ::testing::Values(0.01, 0.25, 0.5, 0.75, 0.99));

}  // namespace
}  // namespace llama::control
