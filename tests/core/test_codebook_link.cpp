// LlamaSystem's codebook fast path: link quality within 3% of the full
// Algorithm-1 sweep, one supply switch per pure lookup, working fine-sweep
// fallback, and hard rejection of mismatched or stale codebooks.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "src/channel/capacity.h"
#include "src/codebook/codebook.h"
#include "src/codebook/compiler.h"
#include "src/core/scenarios.h"

namespace llama::core {
namespace {

using common::Angle;
using common::GainDb;
using common::PowerDbm;

SystemConfig tracked_config() {
  SystemConfig cfg = transmissive_mismatch_config(1.5);
  cfg.rx_antenna = channel::Antenna::iot_dipole(Angle::degrees(45.0));
  cfg.tx_antenna = channel::Antenna::iot_dipole(Angle::degrees(0.0));
  return cfg;
}

codebook::Codebook tracked_book(const SystemConfig& cfg) {
  codebook::CompilerOptions opts;
  opts.n_orientations = 19;  // 10 deg pitch over [0, 180]
  return codebook::CodebookCompiler{cfg}.compile(opts);
}

TEST(CodebookLink, CapacityWithinThreePercentOfTheFullSweep) {
  const SystemConfig cfg = tracked_config();
  const codebook::Codebook book = tracked_book(cfg);
  LlamaSystem sweep_sys{cfg};
  LlamaSystem book_sys{cfg};
  const radio::Receiver rx{cfg.receiver, common::Rng{0}};
  const PowerDbm noise = rx.noise_floor_dbm();

  // Off-lattice orientations: the lookup must interpolate, not just recall.
  for (const double deg : {27.3, 63.7, 101.1, 158.9}) {
    const channel::Antenna antenna =
        channel::Antenna::iot_dipole(Angle::degrees(deg));
    sweep_sys.link().set_rx_antenna(antenna);
    book_sys.link().set_rx_antenna(antenna);
    const double sweep_capacity = channel::capacity_bits_per_hz(
        sweep_sys.optimize_link_batched().sweep.best_power, noise);
    const double book_capacity = channel::capacity_bits_per_hz(
        book_sys.optimize_link_codebook(book).sweep.best_power, noise);
    EXPECT_GE(book_capacity, 0.97 * sweep_capacity) << "at " << deg << " deg";
  }
}

TEST(CodebookLink, PureLookupCostsExactlyOneSupplySwitch) {
  const SystemConfig cfg = tracked_config();
  const codebook::Codebook book = tracked_book(cfg);
  LlamaSystem sys{cfg};
  CodebookLinkOptions opts;
  opts.enable_fine_sweep = false;
  const control::OptimizationReport report =
      sys.optimize_link_codebook(book, opts);
  EXPECT_EQ(report.sweep.probes, 1);
  EXPECT_NEAR(report.sweep.time_cost_s, 0.02, 1e-12);  // one 50 Hz switch
  // The surface was left programmed at the looked-up bias.
  EXPECT_EQ(sys.surface().bias_x().value(), report.sweep.best_vx.value());
  EXPECT_EQ(sys.surface().bias_y().value(), report.sweep.best_vy.value());
}

TEST(CodebookLink, FineSweepFallbackRefinesWhenForced) {
  const SystemConfig cfg = tracked_config();
  const codebook::Codebook book = tracked_book(cfg);
  LlamaSystem pure{cfg};
  LlamaSystem refined{cfg};
  CodebookLinkOptions pure_opts;
  pure_opts.enable_fine_sweep = false;
  CodebookLinkOptions forced;
  // An impossible threshold forces the fallback on every round.
  forced.fine_sweep_threshold = GainDb{-1000.0};
  forced.fine_steps_per_axis = 5;

  const control::OptimizationReport lookup_only =
      pure.optimize_link_codebook(book, pure_opts);
  const control::OptimizationReport with_fallback =
      refined.optimize_link_codebook(book, forced);
  EXPECT_EQ(with_fallback.sweep.probes, 1 + 5 * 5);
  // Refinement can only improve on the looked-up bias.
  EXPECT_GE(with_fallback.sweep.best_power.value(),
            lookup_only.sweep.best_power.value());
}

TEST(CodebookLink, WrongSurfaceModeIsRejected) {
  const SystemConfig transmissive = tracked_config();
  const codebook::Codebook book = tracked_book(transmissive);
  SystemConfig reflective = transmissive;
  reflective.geometry.mode = metasurface::SurfaceMode::kReflective;
  LlamaSystem sys{reflective};
  EXPECT_THROW((void)sys.optimize_link_codebook(book), std::invalid_argument);
}

TEST(CodebookLink, StaleConfigHashIsRejected) {
  const SystemConfig cfg = tracked_config();
  const codebook::Codebook book = tracked_book(cfg);
  SystemConfig drifted = cfg;
  drifted.tx_power = PowerDbm{14.0};  // different link than compiled for
  LlamaSystem sys{drifted};
  EXPECT_THROW((void)sys.optimize_link_codebook(book),
               codebook::CodebookStaleError);
}

TEST(CodebookLink, DifferentStackDesignIsRejected) {
  const SystemConfig cfg = tracked_config();
  const codebook::Codebook book = tracked_book(cfg);  // prototype design
  LlamaSystem other_hardware{
      cfg, metasurface::Metasurface{metasurface::reference_rogers_design()}};
  EXPECT_THROW((void)other_hardware.optimize_link_codebook(book),
               codebook::CodebookStaleError);
}

TEST(CodebookLink, UncoveredFrequencyIsRejected) {
  SystemConfig cfg = tracked_config();
  const codebook::Codebook book = tracked_book(cfg);  // single 2.44 GHz point
  LlamaSystem sys{cfg};
  // Frequency is a lookup axis, not part of the config hash — but querying
  // outside the compiled axis must fail, never flat-clamp onto biases
  // compiled for a different band.
  sys.set_frequency(common::Frequency::ghz(5.8));
  EXPECT_THROW((void)sys.optimize_link_codebook(book), std::out_of_range);
}

TEST(CodebookLink, LiveGeometryDriftInvalidatesTheHash) {
  const SystemConfig cfg = tracked_config();
  const codebook::Codebook book = tracked_book(cfg);
  LlamaSystem sys{cfg};
  EXPECT_NO_THROW((void)sys.optimize_link_codebook(book));
  // Moving the endpoints after compilation is real drift: the hash tracks
  // the live link state, not the construction-time snapshot.
  channel::LinkGeometry moved = cfg.geometry;
  moved.tx_rx_distance_m *= 3.0;
  sys.set_geometry(moved);
  EXPECT_THROW((void)sys.optimize_link_codebook(book),
               codebook::CodebookStaleError);
  // Re-orienting the tracked device is NOT drift (it is the query axis).
  LlamaSystem tracker{cfg};
  tracker.link().set_rx_antenna(
      channel::Antenna::iot_dipole(Angle::degrees(160.0)));
  EXPECT_NO_THROW((void)tracker.optimize_link_codebook(book));
}

// --- Runtime codebook-file path: degraded mode on artifact failures ------

std::string write_bytes(const std::string& name,
                        const std::vector<std::uint8_t>& bytes) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return path;
}

TEST(CodebookFilePath, HealthyArtifactServesTheLookup) {
  const SystemConfig cfg = tracked_config();
  const codebook::Codebook book = tracked_book(cfg);
  const std::string path = write_bytes("llama_file_ok.codebook",
                                       book.serialize());
  LlamaSystem sys{cfg};
  const auto outcome = sys.optimize_link_codebook_file(path);
  EXPECT_TRUE(outcome.used_codebook);
  EXPECT_TRUE(outcome.fallback_reason.empty());
  LlamaSystem direct{cfg};
  EXPECT_DOUBLE_EQ(outcome.report.sweep.best_power.value(),
                   direct.optimize_link_codebook(book)
                       .sweep.best_power.value());
}

TEST(CodebookFilePath, MissingFileFallsBackToFullOptimization) {
  const SystemConfig cfg = tracked_config();
  LlamaSystem sys{cfg};
  const auto outcome = sys.optimize_link_codebook_file(
      ::testing::TempDir() + "llama_file_missing.codebook");
  EXPECT_FALSE(outcome.used_codebook);
  EXPECT_FALSE(outcome.fallback_reason.empty());
  // The degraded path is the real batched Algorithm-1 round: identical to
  // running it directly on a twin system (both are deterministic).
  LlamaSystem twin{cfg};
  EXPECT_DOUBLE_EQ(outcome.report.sweep.best_power.value(),
                   twin.optimize_link_batched().sweep.best_power.value());
}

TEST(CodebookFilePath, TruncatedArtifactFallsBack) {
  const SystemConfig cfg = tracked_config();
  std::vector<std::uint8_t> bytes = tracked_book(cfg).serialize();
  bytes.resize(bytes.size() / 2);
  const std::string path = write_bytes("llama_file_trunc.codebook", bytes);
  LlamaSystem sys{cfg};
  const auto outcome = sys.optimize_link_codebook_file(path);
  EXPECT_FALSE(outcome.used_codebook);
  EXPECT_FALSE(outcome.fallback_reason.empty());
  LlamaSystem twin{cfg};
  EXPECT_DOUBLE_EQ(outcome.report.sweep.best_power.value(),
                   twin.optimize_link_batched().sweep.best_power.value());
}

TEST(CodebookFilePath, CorruptArtifactFallsBack) {
  const SystemConfig cfg = tracked_config();
  std::vector<std::uint8_t> bytes = tracked_book(cfg).serialize();
  bytes[bytes.size() / 2] ^= 0x40;  // single bit flip -> checksum mismatch
  const std::string path = write_bytes("llama_file_flip.codebook", bytes);
  LlamaSystem sys{cfg};
  const auto outcome = sys.optimize_link_codebook_file(path);
  EXPECT_FALSE(outcome.used_codebook);
  EXPECT_FALSE(outcome.fallback_reason.empty());
}

TEST(CodebookFilePath, HashStaleArtifactFallsBack) {
  // A codebook compiled for a different link (other tx power) is loadable
  // but stale for this system: the file path must degrade, not serve it.
  SystemConfig drifted = tracked_config();
  drifted.tx_power = PowerDbm{14.0};
  const std::string path = write_bytes("llama_file_stale.codebook",
                                       tracked_book(drifted).serialize());
  LlamaSystem sys{tracked_config()};
  const auto outcome = sys.optimize_link_codebook_file(path);
  EXPECT_FALSE(outcome.used_codebook);
  EXPECT_NE(outcome.fallback_reason.find("config-hash"), std::string::npos)
      << outcome.fallback_reason;
}

}  // namespace
}  // namespace llama::core
