#include "src/core/llama_system.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/scenarios.h"

namespace llama::core {
namespace {

using common::PowerDbm;
using common::Voltage;

TEST(LlamaSystem, DefaultConfigMatchesPaperTestbed) {
  const SystemConfig cfg;
  EXPECT_NEAR(cfg.frequency.in_ghz(), 2.44, 1e-12);
  EXPECT_DOUBLE_EQ(cfg.tx_power.value(), 0.0);
}

TEST(LlamaSystem, MeasurementsAreReproduciblePerSeed) {
  LlamaSystem a{transmissive_mismatch_config()};
  LlamaSystem b{transmissive_mismatch_config()};
  EXPECT_DOUBLE_EQ(a.measure_without_surface().value(),
                   b.measure_without_surface().value());
}

TEST(LlamaSystem, OptimizeImprovesTheMismatchedLink) {
  LlamaSystem sys{transmissive_mismatch_config()};
  (void)sys.optimize_link();
  // Paper Fig. 16: >= ~10 dB of gain on a fully mismatched link.
  EXPECT_GT(sys.improvement().value(), 8.0);
}

TEST(LlamaSystem, OptimizationLeavesSurfaceProgrammed) {
  LlamaSystem sys{transmissive_mismatch_config()};
  const auto report = sys.optimize_link();
  EXPECT_DOUBLE_EQ(sys.surface().bias_x().value(),
                   report.sweep.best_vx.value());
  EXPECT_DOUBLE_EQ(sys.surface().bias_y().value(),
                   report.sweep.best_vy.value());
}

TEST(LlamaSystem, MatchedLinkGainsNothing) {
  LlamaSystem sys{transmissive_match_config()};
  (void)sys.optimize_link();
  // The surface cannot beat an already-matched link (insertion loss).
  EXPECT_LT(sys.improvement().value(), 0.5);
}

TEST(LlamaSystem, CapacityImprovesWithPower) {
  LlamaSystem sys{transmissive_mismatch_config()};
  (void)sys.optimize_link();
  EXPECT_GT(sys.capacity_with_surface(), sys.capacity_without_surface());
}

TEST(LlamaSystem, ProbeProgramsSurfaceBias) {
  LlamaSystem sys{transmissive_mismatch_config()};
  auto probe = sys.make_probe();
  (void)probe(Voltage{7.0}, Voltage{21.0});
  EXPECT_DOUBLE_EQ(sys.surface().bias_x().value(), 7.0);
  EXPECT_DOUBLE_EQ(sys.surface().bias_y().value(), 21.0);
}

TEST(LlamaSystem, SweepCostsOneSecondOfSupplyTime) {
  LlamaSystem sys{transmissive_mismatch_config()};
  const auto report = sys.optimize_link();
  EXPECT_NEAR(report.sweep.time_cost_s, 1.0, 1e-9);
  EXPECT_EQ(report.sweep.probes, 50);  // N * T^2 = 2 * 25
}

TEST(LlamaSystem, FrequencyReconfigurationShiftsPower) {
  LlamaSystem sys{transmissive_mismatch_config()};
  (void)sys.optimize_link();
  const double p_mid = sys.measure_with_surface(0.05).value();
  sys.set_frequency(common::Frequency::ghz(2.0));  // far out of band
  const double p_edge = sys.measure_with_surface(0.05).value();
  // The surface's efficiency and rotation both degrade out of band; the
  // lower Friis loss at 2.0 GHz claws back ~1.7 dB, so the net drop is
  // smaller than the raw S21 rolloff.
  EXPECT_GT(p_mid, p_edge + 2.0);
}

TEST(LlamaSystem, TxPowerReconfigurationScalesLinearly) {
  LlamaSystem sys{transmissive_mismatch_config()};
  const double p0 = sys.measure_without_surface().value();
  sys.set_tx_power(PowerDbm{10.0});
  const double p10 = sys.measure_without_surface().value();
  EXPECT_NEAR(p10 - p0, 10.0, 0.3);
}

TEST(LlamaSystem, GeometryReconfigurationMovesPower) {
  LlamaSystem sys{transmissive_mismatch_config(0.24)};
  const double near_p = sys.measure_without_surface().value();
  channel::LinkGeometry far = sys.config().geometry;
  far.tx_rx_distance_m = 0.60;
  sys.set_geometry(far);
  const double far_p = sys.measure_without_surface().value();
  EXPECT_GT(near_p, far_p + 5.0);
}

TEST(LlamaSystem, RotationEstimationProducesOrderedAngles) {
  LlamaSystem sys{transmissive_match_config()};
  control::RotationEstimator::Options opt;
  opt.orientation_step_deg = 4.0;
  opt.v_step = Voltage{6.0};
  const auto est = sys.estimate_rotation(opt);
  EXPECT_LE(est.min_rotation.deg(), est.max_rotation.deg());
  EXPECT_GE(est.min_rotation.deg(), 0.0);
  EXPECT_LE(est.max_rotation.deg(), 90.0);
  // Paper Fig. 12: small minimum (few degrees), large maximum (tens).
  EXPECT_LT(est.min_rotation.deg(), 15.0);
  EXPECT_GT(est.max_rotation.deg(), 25.0);
}

TEST(LlamaSystem, ExternalResponsesComposeIntoMeasurements) {
  SystemConfig cfg = transmissive_mismatch_config(1.0);
  cfg.scene.leakage.push_back(channel::LeakageSurfaceSpec{0.4, 0.15});
  LlamaSystem system{cfg};

  const PowerDbm quiet = system.expected_measure_with_surface();
  const em::JonesMatrix neighbor =
      system.surface().response(cfg.frequency, cfg.geometry.mode);
  system.set_external_responses({neighbor});
  const PowerDbm leaky = system.expected_measure_with_surface();
  EXPECT_NE(leaky.value(), quiet.value());
  // The no-surface baseline ignores externals (every surface absent).
  system.clear_external_responses();
  EXPECT_EQ(system.expected_measure_with_surface().value(), quiet.value());

  // A single-link system has no non-home slots to program.
  LlamaSystem plain{transmissive_mismatch_config(1.0)};
  EXPECT_THROW(plain.set_external_responses({neighbor}),
               std::invalid_argument);
}

TEST(LlamaSystem, GridProbeFreezesExternalContributions) {
  SystemConfig cfg = transmissive_mismatch_config(1.0);
  cfg.scene.leakage.push_back(channel::LeakageSurfaceSpec{0.4, 0.2});
  LlamaSystem system{cfg};
  const em::JonesMatrix neighbor =
      system.surface().response(cfg.frequency, cfg.geometry.mode);

  const std::vector<double> axis{0.0, 15.0, 30.0};
  const control::PowerGrid quiet = system.make_grid_probe()(axis, axis);
  system.set_external_responses({neighbor});
  const control::PowerGrid leaky = system.make_grid_probe()(axis, axis);
  // The frozen neighbor term shifts the whole swept plane, and pointwise
  // the batched path must agree with the unbatched coherent measurement.
  bool any_differs = false;
  for (std::size_t iy = 0; iy < axis.size(); ++iy)
    for (std::size_t ix = 0; ix < axis.size(); ++ix)
      if (quiet[iy][ix].value() != leaky[iy][ix].value()) any_differs = true;
  EXPECT_TRUE(any_differs);
  system.surface().set_bias(Voltage{15.0}, Voltage{15.0});
  const control::PowerGrid spot = system.make_grid_probe()({15.0}, {15.0});
  EXPECT_NEAR(spot[0][0].value(),
              system.expected_measure_with_surface().value(), 1e-12);
}

}  // namespace
}  // namespace llama::core
