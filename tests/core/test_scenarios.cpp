#include "src/core/scenarios.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/math_utils.h"

namespace llama::core {
namespace {

TEST(Scenarios, TransmissiveMismatchIsOrthogonal) {
  const SystemConfig cfg = transmissive_mismatch_config();
  const double tx_deg =
      cfg.tx_antenna.polarization().orientation().deg();
  const double rx_deg =
      cfg.rx_antenna.polarization().orientation().deg();
  EXPECT_NEAR(std::abs(tx_deg - rx_deg), 90.0, 1e-9);
  EXPECT_EQ(cfg.geometry.mode, metasurface::SurfaceMode::kTransmissive);
}

TEST(Scenarios, MatchConfigAlignsAntennas) {
  const SystemConfig cfg = transmissive_match_config();
  EXPECT_NEAR(cfg.tx_antenna.polarization().orientation().deg(),
              cfg.rx_antenna.polarization().orientation().deg(), 1e-9);
}

TEST(Scenarios, SurfaceSitsMidwayInTransmissive) {
  const SystemConfig cfg = transmissive_mismatch_config(0.48);
  EXPECT_NEAR(cfg.geometry.tx_surface_distance_m, 0.24, 1e-12);
}

TEST(Scenarios, ReflectiveUsesSeventyCmSeparation) {
  const SystemConfig cfg = reflective_mismatch_config(0.42);
  EXPECT_EQ(cfg.geometry.mode, metasurface::SurfaceMode::kReflective);
  EXPECT_NEAR(cfg.geometry.tx_rx_distance_m, 0.70, 1e-12);
  EXPECT_NEAR(cfg.geometry.tx_surface_distance_m, 0.42, 1e-12);
}

TEST(Scenarios, RespirationScenarioMatchesPaperSetup) {
  const SensingScenario s = respiration_scenario();
  // Paper Section 5.2.2: surface 2 m away, 5 mW transmit power.
  EXPECT_NEAR(s.system.geometry.tx_surface_distance_m, 2.0, 1e-12);
  EXPECT_NEAR(s.system.tx_power.to_mw().value(), 5.0, 0.2);
  EXPECT_NEAR(s.breathing.rate_hz, 0.25, 1e-12);
}

TEST(Scenarios, RespirationTraceHasRequestedLength) {
  const SensingScenario s = respiration_scenario();
  const auto trace = simulate_respiration_trace(s, false, 10.0, 5.0);
  EXPECT_EQ(trace.size(), 50u);
}

TEST(Scenarios, DenseDeploymentScenarioShape) {
  const DenseDeploymentScenario s = dense_deployment_scenario(24, 3);
  EXPECT_EQ(s.config.n_surfaces, 3u);
  EXPECT_EQ(s.config.geometry.mode, metasurface::SurfaceMode::kTransmissive);
  ASSERT_EQ(s.devices.size(), 24u);
  for (std::size_t i = 0; i < s.devices.size(); ++i) {
    // Mismatch-heavy band: at least 50 deg off the AP's 0 deg polarization.
    EXPECT_GE(s.devices[i].orientation.deg(), 50.0) << i;
    EXPECT_LT(s.devices[i].orientation.deg(), 130.0) << i;
    EXPECT_EQ(s.devices[i].surface, -1);  // round-robin assignment
    EXPECT_GT(s.devices[i].traffic_weight, 0.0);
  }
  // Deterministic: same call, same fleet.
  const DenseDeploymentScenario again = dense_deployment_scenario(24, 3);
  for (std::size_t i = 0; i < s.devices.size(); ++i)
    EXPECT_EQ(s.devices[i].orientation.deg(),
              again.devices[i].orientation.deg());
}

TEST(Scenarios, SurfaceRaisesRespirationSignalLevel) {
  const SensingScenario s = respiration_scenario();
  const auto with = simulate_respiration_trace(s, true, 12.0, 5.0);
  const auto without = simulate_respiration_trace(s, false, 12.0, 5.0);
  EXPECT_GT(common::mean(with), common::mean(without) + 5.0);
}

TEST(Scenarios, BreathingRippleVisibleOnlyWithSurface) {
  // The Fig. 23 observation, as a detectability statement.
  const SensingScenario s = respiration_scenario();
  const auto with = simulate_respiration_trace(s, true, 60.0, 10.0);
  const auto without = simulate_respiration_trace(s, false, 60.0, 10.0);
  sensing::RespirationDetector det;
  EXPECT_TRUE(det.analyze(with, 10.0).detected);
  EXPECT_FALSE(det.analyze(without, 10.0).detected);
}

TEST(Scenarios, RespirationTraceIsSeedDeterministic) {
  const SensingScenario s = respiration_scenario();
  const auto a = simulate_respiration_trace(s, false, 5.0, 10.0, 99);
  const auto b = simulate_respiration_trace(s, false, 5.0, 10.0, 99);
  EXPECT_EQ(a, b);
}

TEST(Scenarios, RelayChainExtendsRangeBeyondSingleSurface) {
  const RelayExtensionScenario scenario = relay_extension_scenario();
  // Identical endpoints/baseline: only the surface topology differs.
  const SceneSweepResult single = sweep_scene_biases(scenario.single);
  const SceneSweepResult relay = sweep_scene_biases(scenario.relay);
  EXPECT_NEAR(single.baseline.value(), relay.baseline.value(), 1e-9);
  // The chained rotation shares the 90 deg burden across two surfaces, so
  // the relay's best power — and the Friis range extension its gain buys —
  // beats what one surface can reach at the same geometry.
  EXPECT_GT(relay.best_power.value(), single.best_power.value());
  EXPECT_GT(relay.range_extension, single.range_extension);
  EXPECT_GT(single.range_extension, 1.0);
  // And the relay config's codebook hash differs: a codebook compiled for
  // the single-surface scene must not be served to the relay scene.
  EXPECT_NE(core::LlamaSystem{scenario.single}.codebook_config_hash(),
            core::LlamaSystem{scenario.relay}.codebook_config_hash());
}

}  // namespace
}  // namespace llama::core
