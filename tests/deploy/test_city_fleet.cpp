// CityFleetEngine contracts: roster/config validation, sub-linear pruned
// scenes, the sharded fleet evaluation being byte-identical for any worker
// count AND equal to the per-device direct evaluation, and hierarchical
// frozen aggregation (refreeze_device == fresh freeze, byte for byte).
#include "src/deploy/city_fleet.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "src/core/scenarios.h"

namespace llama::deploy {
namespace {

TEST(CityFleetEngine, ValidatesConfigAndRoster) {
  core::CityScaleScenario scenario = core::city_scale_scenario(8, 4);
  {
    DeploymentConfig cfg = scenario.config;
    cfg.layout.positions.clear();
    EXPECT_THROW((CityFleetEngine{cfg}), std::invalid_argument);
  }
  {
    DeploymentConfig cfg = scenario.config;
    cfg.layout.positions.pop_back();  // n_surfaces now disagrees
    EXPECT_THROW((CityFleetEngine{cfg}), std::invalid_argument);
  }
  {
    DeploymentConfig cfg = scenario.config;
    cfg.geometry.mode = metasurface::SurfaceMode::kReflective;
    EXPECT_THROW((CityFleetEngine{cfg}), std::invalid_argument);
  }

  CityFleetEngine engine{scenario.config};
  {
    auto devices = scenario.devices;
    devices[0].position.reset();
    EXPECT_THROW(engine.assign(devices), std::invalid_argument);
  }
  {
    auto devices = scenario.devices;
    devices[0].surface = 8;  // out of the 8-surface range
    EXPECT_THROW(engine.assign(devices), std::out_of_range);
  }
  engine.assign(scenario.devices);
  EXPECT_THROW((void)engine.serving_surface(scenario.devices.size()),
               std::out_of_range);
  EXPECT_THROW((void)engine.scene(scenario.devices.size()),
               std::out_of_range);
  auto short_biases = scenario.biases;
  short_biases.pop_back();
  EXPECT_THROW((void)engine.evaluate(short_biases), std::invalid_argument);
  EXPECT_THROW((void)engine.freeze_device(scenario.devices.size(),
                                          scenario.biases),
               std::out_of_range);
  EXPECT_THROW(core::city_scale_scenario(0, 1), std::invalid_argument);
}

TEST(CityFleetEngine, ExplicitSurfaceOverridesNearest) {
  core::CityScaleScenario scenario = core::city_scale_scenario(9, 6);
  CityFleetEngine nearest{scenario.config};
  nearest.assign(scenario.devices);
  auto devices = scenario.devices;
  const std::size_t forced = (nearest.serving_surface(0) + 1) % 9;
  devices[0].surface = static_cast<int>(forced);
  CityFleetEngine overridden{scenario.config};
  overridden.assign(devices);
  EXPECT_EQ(overridden.serving_surface(0), forced);
  for (std::size_t i = 1; i < devices.size(); ++i)
    EXPECT_EQ(overridden.serving_surface(i), nearest.serving_surface(i));
}

TEST(CityFleetEngine, PrunedScenesAreSubLinearInM) {
  const core::CityScaleScenario scenario =
      core::city_scale_scenario(256, 64, -58.0);
  CityFleetEngine engine{scenario.config};
  engine.assign(scenario.devices);
  // A device's scene keeps its spatial neighborhood, not the city: far
  // below the 255 dense leakage paths.
  EXPECT_LT(engine.mean_kept_leakage(), 32.0);
  EXPECT_GT(engine.total_pruned(), 0u);

  const CityEvalReport report = engine.evaluate(scenario.biases);
  ASSERT_EQ(report.power.size(), scenario.devices.size());
  ASSERT_EQ(report.error_bound_db.size(), scenario.devices.size());
  EXPECT_EQ(report.shard_count, engine.index().cell_count());
  EXPECT_GT(report.max_error_bound_db, 0.0);
  EXPECT_TRUE(std::isfinite(report.max_error_bound_db));
  for (double b : report.error_bound_db) {
    EXPECT_GE(b, 0.0);
    EXPECT_LE(b, report.max_error_bound_db);
  }
}

// The tentpole determinism contract at the sizes the issue pins: M=64
// surfaces x N=512 devices, the identical byte pattern from 1, 2 and 8
// workers (8 oversubscribes any CI machine, which is the point).
TEST(CityFleetEngine, ByteIdenticalPowerForAnyWorkerCount) {
  const core::CityScaleScenario scenario = core::city_scale_scenario(64, 512);
  CityFleetEngine engine{scenario.config};
  engine.assign(scenario.devices);

  const CityEvalReport base = engine.evaluate(scenario.biases, 1);
  ASSERT_EQ(base.power.size(), 512u);
  for (const int threads : {2, 8}) {
    const CityEvalReport other = engine.evaluate(scenario.biases, threads);
    ASSERT_EQ(other.power.size(), base.power.size());
    EXPECT_EQ(std::memcmp(other.power.data(), base.power.data(),
                          base.power.size() * sizeof(common::PowerDbm)),
              0)
        << threads << " workers diverged from 1 worker";
    EXPECT_EQ(std::memcmp(other.error_bound_db.data(),
                          base.error_bound_db.data(),
                          base.error_bound_db.size() * sizeof(double)),
              0);
  }
}

TEST(CityFleetEngine, ShardedEvaluationMatchesDirectSceneEvaluation) {
  const core::CityScaleScenario scenario = core::city_scale_scenario(32, 24);
  CityFleetEngine engine{scenario.config};
  engine.assign(scenario.devices);
  const CityEvalReport report = engine.evaluate(scenario.biases, 4);

  // Resolve the same responses and walk each device's scene directly —
  // the cell-sharded loop must be a pure reordering of this.
  std::vector<em::JonesMatrix> responses;
  for (const SurfaceBias& b : scenario.biases)
    responses.push_back(engine.response_engine().response(
        scenario.config.frequency, scenario.config.geometry.mode, b.vx,
        b.vy));
  for (std::size_t i = 0; i < scenario.devices.size(); ++i) {
    const channel::PropagationScene& scene = engine.scene(i);
    std::vector<const em::JonesMatrix*> view;
    view.push_back(&responses[engine.serving_surface(i)]);
    for (const channel::PlacedLeakageSpec& p : scene.spec().placed)
      view.push_back(&responses[p.external_id]);
    const common::PowerDbm direct = scene.received_power(
        scenario.config.tx_power, scenario.config.frequency,
        channel::PropagationScene::ResponseView{view.data(), view.size()});
    EXPECT_DOUBLE_EQ(report.power[i].value(), direct.value())
        << "device " << i;
  }
}

TEST(CityFleetEngine, RefreezeMatchesFreshFreezeByteForByte) {
  const core::CityScaleScenario scenario = core::city_scale_scenario(32, 8);
  CityFleetEngine engine{scenario.config};
  engine.assign(scenario.devices);

  // Retune three surfaces: the device's own cell neighborhood and one far
  // surface (whose path was likely pruned — refreeze must shrug it off).
  const std::vector<std::size_t> retuned{
      (engine.serving_surface(0) + 1) % 32, (engine.serving_surface(0) + 2) % 32,
      31};
  std::vector<SurfaceBias> after = scenario.biases;
  for (std::size_t s : retuned) {
    after[s].vx = common::Voltage{after[s].vx.value() * 0.5 + 3.0};
    after[s].vy = common::Voltage{27.0 - after[s].vy.value() * 0.5};
  }

  channel::PropagationScene::FrozenEval incremental =
      engine.freeze_device(0, scenario.biases);
  engine.refreeze_device(0, incremental, retuned, after);
  const channel::PropagationScene::FrozenEval fresh =
      engine.freeze_device(0, after);

  EXPECT_EQ(std::memcmp(&incremental.fixed_total, &fresh.fixed_total,
                        sizeof(fresh.fixed_total)),
            0)
      << "incremental refreeze diverged from a fresh freeze";
  ASSERT_EQ(incremental.cell_fields.size(), fresh.cell_fields.size());
  for (std::size_t c = 0; c < fresh.cell_fields.size(); ++c) {
    EXPECT_EQ(incremental.cell_fields[c].cell, fresh.cell_fields[c].cell);
    EXPECT_EQ(std::memcmp(&incremental.cell_fields[c].field,
                          &fresh.cell_fields[c].field,
                          sizeof(fresh.cell_fields[c].field)),
              0)
        << "cell " << fresh.cell_fields[c].cell;
  }

  // And the frozen sweep itself agrees bit-for-bit on fresh candidates.
  const channel::PropagationScene& scene = engine.scene(0);
  for (int c = 0; c < 5; ++c) {
    const em::JonesMatrix candidate = engine.response_engine().response(
        scenario.config.frequency, scenario.config.geometry.mode,
        common::Voltage{static_cast<double>(c) * 6.0},
        common::Voltage{30.0 - static_cast<double>(c) * 6.0});
    EXPECT_DOUBLE_EQ(
        scene.received_power_swept(incremental, candidate).value(),
        scene.received_power_swept(fresh, candidate).value());
  }

  // A retuned index past the deployment is rejected.
  const std::vector<std::size_t> bad{32};
  EXPECT_THROW(engine.refreeze_device(0, incremental, bad, after),
               std::out_of_range);
}

TEST(CityFleetEngine, FrozenSweepMatchesFullEvaluation) {
  const core::CityScaleScenario scenario = core::city_scale_scenario(64, 4);
  CityFleetEngine engine{scenario.config};
  engine.assign(scenario.devices);
  const channel::PropagationScene::FrozenEval frozen =
      engine.freeze_device(0, scenario.biases);

  // Sweeping the serving surface's own bias must agree with a full
  // evaluation whose bias vector carries that same candidate.
  std::vector<SurfaceBias> biases = scenario.biases;
  biases[engine.serving_surface(0)] = SurfaceBias{common::Voltage{9.0},
                                                  common::Voltage{21.0}};
  const em::JonesMatrix candidate = engine.response_engine().response(
      scenario.config.frequency, scenario.config.geometry.mode,
      common::Voltage{9.0}, common::Voltage{21.0});
  const CityEvalReport full = engine.evaluate(biases, 1);
  EXPECT_NEAR(
      engine.scene(0).received_power_swept(frozen, candidate).value(),
      full.power[0].value(), 1e-12);
}

}  // namespace
}  // namespace llama::deploy
