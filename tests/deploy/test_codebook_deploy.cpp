// DeploymentEngine::run_codebook: one immutable codebook serving every
// device of a deployment — sweep-free optimization at capacity parity with
// the Algorithm-1 path, deterministic across thread counts, and stale or
// mismatched codebooks rejected up front.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "src/codebook/codebook.h"
#include "src/codebook/compiler.h"
#include "src/core/scenarios.h"

namespace llama::deploy {
namespace {

/// Codebook compiled from the SystemConfig mirror of a deployment config —
/// the pairing deployment_config_hash guarantees to hash identically.
codebook::Codebook book_for(const DeploymentConfig& config) {
  core::SystemConfig cfg;
  cfg.frequency = config.frequency;
  cfg.tx_power = config.tx_power;
  cfg.tx_antenna = config.tx_antenna;
  cfg.rx_antenna = config.rx_antenna;
  cfg.geometry = config.geometry;
  cfg.environment = config.environment;
  cfg.receiver = config.receiver;
  codebook::CompilerOptions opts;
  opts.f_min = config.frequency;
  opts.n_orientations = 19;  // 10 deg pitch over [0, 180]
  return codebook::CodebookCompiler{cfg}.compile(opts);
}

TEST(DeployCodebook, SweepFreeRunReachesCapacityParity) {
  const core::DenseDeploymentScenario scenario =
      core::dense_deployment_scenario(8, 2);
  const codebook::Codebook book = book_for(scenario.config);

  DeploymentEngine sweep_engine{scenario.config};
  DeploymentEngine book_engine{scenario.config};
  const DeploymentReport swept = sweep_engine.run(scenario.devices);
  const DeploymentReport looked_up =
      book_engine.run_codebook(scenario.devices, book);

  ASSERT_EQ(looked_up.devices.size(), scenario.devices.size());
  for (const DeviceResult& d : looked_up.devices) {
    // Sweep-free: one lookup evaluation, at most a second for the
    // nearest-cell deviation fallback — never an Algorithm-1 grid.
    EXPECT_LE(d.sweep.probes, 2) << d.name;
    EXPECT_LE(d.sweep.time_cost_s, 0.04 + 1e-12);
  }
  // Aggregate spectral efficiency within 3% of the full Algorithm-1 round.
  EXPECT_GE(looked_up.sum_capacity_bits_per_hz,
            0.97 * swept.sum_capacity_bits_per_hz);
  EXPECT_GT(looked_up.sum_capacity_bits_per_hz,
            looked_up.unassisted_capacity_bits_per_hz);
}

TEST(DeployCodebook, ByteIdenticalForAnyThreadCount) {
  const core::DenseDeploymentScenario scenario =
      core::dense_deployment_scenario(8, 2);
  const codebook::Codebook book = book_for(scenario.config);
  DeploymentConfig serial_cfg = scenario.config;
  serial_cfg.threads = 1;
  DeploymentConfig parallel_cfg = scenario.config;
  parallel_cfg.threads = 5;
  DeploymentEngine serial{serial_cfg};
  DeploymentEngine parallel{parallel_cfg};
  const DeploymentReport a = serial.run_codebook(scenario.devices, book);
  const DeploymentReport b = parallel.run_codebook(scenario.devices, book);
  ASSERT_EQ(a.devices.size(), b.devices.size());
  for (std::size_t i = 0; i < a.devices.size(); ++i) {
    EXPECT_EQ(a.devices[i].sweep.best_vx.value(),
              b.devices[i].sweep.best_vx.value());
    EXPECT_EQ(a.devices[i].sweep.best_vy.value(),
              b.devices[i].sweep.best_vy.value());
    EXPECT_EQ(a.devices[i].sweep.best_power.value(),
              b.devices[i].sweep.best_power.value());
  }
  EXPECT_EQ(a.sum_capacity_bits_per_hz, b.sum_capacity_bits_per_hz);
  EXPECT_EQ(a.mean_ber, b.mean_ber);
}

TEST(DeployCodebook, StaleOrMismatchedCodebookIsRejected) {
  const core::DenseDeploymentScenario scenario =
      core::dense_deployment_scenario(4, 1);
  const codebook::Codebook book = book_for(scenario.config);

  DeploymentConfig drifted = scenario.config;
  drifted.tx_power = common::PowerDbm{3.0};
  DeploymentEngine stale{drifted};
  EXPECT_THROW((void)stale.run_codebook(scenario.devices, book),
               codebook::CodebookStaleError);

  DeploymentConfig reflective = scenario.config;
  reflective.geometry.mode = metasurface::SurfaceMode::kReflective;
  DeploymentEngine wrong_mode{reflective};
  EXPECT_THROW((void)wrong_mode.run_codebook(scenario.devices, book),
               std::invalid_argument);

  // A different fabrication must not validate either.
  DeploymentEngine other_stack{scenario.config,
                               metasurface::reference_rogers_design()};
  EXPECT_THROW((void)other_stack.run_codebook(scenario.devices, book),
               codebook::CodebookStaleError);

  // An uncovered frequency must fail, not flat-clamp across bands. The
  // frequency is a lookup axis (not hashed), so this is a range error.
  DeploymentConfig retuned = scenario.config;
  retuned.frequency = common::Frequency::ghz(5.8);
  DeploymentEngine off_axis{retuned};
  EXPECT_THROW((void)off_axis.run_codebook(scenario.devices, book),
               std::out_of_range);

  // run()'s validation still applies.
  std::vector<DeviceSpec> bad = scenario.devices;
  bad[0].surface = 7;
  DeploymentEngine engine{scenario.config};
  EXPECT_THROW((void)engine.run_codebook(bad, book), std::out_of_range);
}

// --- run_codebook_file: mid-fleet artifact failures degrade, not abort ---

std::string write_book_bytes(const std::string& name,
                             const std::vector<std::uint8_t>& bytes) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return path;
}

TEST(DeployCodebookFile, HealthyArtifactServesEveryDevice) {
  const core::DenseDeploymentScenario scenario =
      core::dense_deployment_scenario(4, 2);
  const codebook::Codebook book = book_for(scenario.config);
  const std::string path =
      write_book_bytes("llama_deploy_ok.codebook", book.serialize());

  DeploymentEngine engine{scenario.config};
  const DeploymentReport report =
      engine.run_codebook_file(scenario.devices, path);
  EXPECT_TRUE(report.used_codebook);
  EXPECT_TRUE(report.codebook_fallback_reason.empty());

  DeploymentEngine direct{scenario.config};
  const DeploymentReport expected =
      direct.run_codebook(scenario.devices, book);
  ASSERT_EQ(report.devices.size(), expected.devices.size());
  for (std::size_t i = 0; i < report.devices.size(); ++i)
    EXPECT_DOUBLE_EQ(report.devices[i].sweep.best_power.value(),
                     expected.devices[i].sweep.best_power.value());
}

TEST(DeployCodebookFile, CorruptArtifactDegradesToFullSweep) {
  const core::DenseDeploymentScenario scenario =
      core::dense_deployment_scenario(4, 2);
  std::vector<std::uint8_t> bytes = book_for(scenario.config).serialize();
  bytes[bytes.size() / 3] ^= 0x01;  // bit flip -> checksum mismatch
  const std::string path =
      write_book_bytes("llama_deploy_flip.codebook", bytes);

  DeploymentEngine engine{scenario.config};
  const DeploymentReport report =
      engine.run_codebook_file(scenario.devices, path);
  EXPECT_FALSE(report.used_codebook);
  EXPECT_FALSE(report.codebook_fallback_reason.empty());
  // The degraded path is the real Algorithm-1 deployment round.
  DeploymentEngine direct{scenario.config};
  EXPECT_DOUBLE_EQ(report.sum_capacity_bits_per_hz,
                   direct.run(scenario.devices).sum_capacity_bits_per_hz);
}

TEST(DeployCodebookFile, TruncatedAndStaleArtifactsDegrade) {
  const core::DenseDeploymentScenario scenario =
      core::dense_deployment_scenario(4, 2);
  DeploymentEngine engine{scenario.config};

  std::vector<std::uint8_t> bytes = book_for(scenario.config).serialize();
  bytes.resize(bytes.size() - 1);
  const DeploymentReport truncated = engine.run_codebook_file(
      scenario.devices,
      write_book_bytes("llama_deploy_trunc.codebook", bytes));
  EXPECT_FALSE(truncated.used_codebook);
  EXPECT_FALSE(truncated.codebook_fallback_reason.empty());

  // Hash-stale: a book compiled for a different deployment (other tx
  // power) loads fine but must not serve this one.
  core::DenseDeploymentScenario other = scenario;
  other.config.tx_power = common::PowerDbm{0.0};
  const DeploymentReport stale = engine.run_codebook_file(
      scenario.devices,
      write_book_bytes("llama_deploy_stale.codebook",
                       book_for(other.config).serialize()));
  EXPECT_FALSE(stale.used_codebook);
  EXPECT_NE(stale.codebook_fallback_reason.find("recompile"),
            std::string::npos)
      << stale.codebook_fallback_reason;

  // Roster errors are not artifact failures: they still throw (before the
  // file is even touched — the path here does not exist).
  std::vector<DeviceSpec> bad = scenario.devices;
  bad[0].surface = 9;
  EXPECT_THROW((void)engine.run_codebook_file(bad, "unused"),
               std::out_of_range);
}

}  // namespace
}  // namespace llama::deploy
