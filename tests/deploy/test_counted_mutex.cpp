// CountedMutex: the contention tally behind SharedResponseEngine's
// lock_contention statistic — uncontended traffic counts nothing, a
// provably contended acquisition counts exactly once, and the engine's
// cache_stats() surfaces the sum.
#include "src/deploy/deployment_engine.h"

#include <gtest/gtest.h>

#include <thread>

#include "src/metasurface/designs.h"

namespace llama::deploy {
namespace {

TEST(CountedMutex, UncontendedTrafficCountsNothing) {
  CountedMutex m;
  for (int i = 0; i < 100; ++i) {
    m.lock();
    m.unlock();
  }
  EXPECT_TRUE(m.try_lock());
  m.unlock();
  EXPECT_EQ(m.contended(), 0u);
}

TEST(CountedMutex, ContendedAcquisitionCountsExactlyOnce) {
  CountedMutex m;
  m.lock();  // the main thread holds the lock...
  std::thread contender([&m] {
    m.lock();  // ...so this acquisition is contended by construction
    m.unlock();
  });
  // The tally is bumped BEFORE the contender blocks, so waiting for it is
  // race-free: once observed, release the lock and let the contender in.
  while (m.contended() == 0) std::this_thread::yield();
  m.unlock();
  contender.join();
  EXPECT_EQ(m.contended(), 1u);

  m.reset();
  EXPECT_EQ(m.contended(), 0u);
}

TEST(CountedMutex, FailedTryLockDoesNotCount) {
  CountedMutex m;
  m.lock();
  EXPECT_FALSE(m.try_lock());  // contended, but try_lock never blocks
  m.unlock();
  EXPECT_EQ(m.contended(), 0u);
}

TEST(SharedResponseEngine, CacheStatsCarryLockContention) {
  SharedResponseEngine engine{metasurface::prototype_fr4_design()};
  // Single-threaded traffic can never contend.
  const common::Frequency f = common::Frequency::ghz(2.44);
  for (double v : {0.0, 10.0, 20.0})
    (void)engine.response(f, metasurface::SurfaceMode::kTransmissive,
                          common::Voltage{v}, common::Voltage{v});
  const metasurface::ResponseCacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.lock_contention, 0u);
  EXPECT_GT(stats.misses, 0u);
  // clear() zeroes the contention tally along with the other statistics.
  engine.clear();
  EXPECT_EQ(engine.cache_stats().lock_contention, 0u);
}

}  // namespace
}  // namespace llama::deploy
