// Deployment-engine correctness: the shared plan registry + cache must
// reproduce the per-surface response engine exactly, device shards must be
// byte-identical for any thread count, and the engine must agree with the
// pre-engine per-device LlamaSystem path at the same measurement model.
#include "src/deploy/deployment_engine.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/scenarios.h"
#include "src/metasurface/designs.h"

namespace llama::deploy {
namespace {

using common::Frequency;
using common::PowerDbm;
using common::Voltage;
using em::JonesMatrix;
using metasurface::SurfaceMode;

constexpr double kTol = 1e-12;

void expect_jones_near(const JonesMatrix& a, const JonesMatrix& b, double tol,
                       const std::string& what) {
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < 2; ++c) {
      EXPECT_NEAR(a.at(r, c).real(), b.at(r, c).real(), tol)
          << what << " [" << r << "," << c << "] re";
      EXPECT_NEAR(a.at(r, c).imag(), b.at(r, c).imag(), tol)
          << what << " [" << r << "," << c << "] im";
    }
}

TEST(SharedResponseEngine, MatchesPrivateCachedMetasurface) {
  SharedResponseEngine engine{metasurface::prototype_fr4_design()};
  metasurface::Metasurface reference = metasurface::Metasurface::llama_prototype();
  reference.enable_response_cache();  // same default quantization contract
  const Frequency f = Frequency::ghz(2.44);
  for (auto mode : {SurfaceMode::kTransmissive, SurfaceMode::kReflective}) {
    for (double vx : {0.0, 7.25, 13.5, 30.0}) {
      for (double vy : {0.0, 4.5, 21.0, 30.0}) {
        reference.set_bias(Voltage{vx}, Voltage{vy});
        expect_jones_near(reference.response(f, mode),
                          engine.response(f, mode, Voltage{vx}, Voltage{vy}),
                          kTol, "shared vs private cache");
      }
    }
  }
  // One plan per (frequency, mode) touched, never one per caller.
  EXPECT_EQ(engine.plan_count(), 2u);
}

TEST(SharedResponseEngine, GridMatchesPointwiseAndFillsCache) {
  SharedResponseEngine engine{metasurface::prototype_fr4_design()};
  const Frequency f = Frequency::ghz(2.44);
  const std::vector<double> vxs{0.0, 7.5, 15.0, 30.0};
  const std::vector<double> vys{0.0, 10.0, 30.0};
  // Pre-warm two cells so the grid path exercises the hit+miss mix.
  (void)engine.response(f, SurfaceMode::kTransmissive, Voltage{7.5},
                        Voltage{10.0});
  const metasurface::JonesGrid grid =
      engine.response_grid(f, SurfaceMode::kTransmissive, vxs, vys);
  ASSERT_EQ(grid.size(), vys.size());
  for (std::size_t iy = 0; iy < vys.size(); ++iy) {
    ASSERT_EQ(grid[iy].size(), vxs.size());
    for (std::size_t ix = 0; ix < vxs.size(); ++ix)
      expect_jones_near(engine.response(f, SurfaceMode::kTransmissive,
                                        Voltage{vxs[ix]}, Voltage{vys[iy]}),
                        grid[iy][ix], 0.0, "grid cell vs pointwise");
  }
  const metasurface::ResponseCacheStats stats = engine.cache_stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_EQ(engine.cache_size(), vxs.size() * vys.size());
}

TEST(SharedResponseEngine, ClearDropsPlansCacheAndStats) {
  SharedResponseEngine engine{metasurface::prototype_fr4_design()};
  const Frequency f = Frequency::ghz(2.44);
  (void)engine.response(f, SurfaceMode::kTransmissive, Voltage{5.0},
                        Voltage{5.0});
  (void)engine.response(f, SurfaceMode::kTransmissive, Voltage{5.0},
                        Voltage{5.0});
  EXPECT_GT(engine.plan_count(), 0u);
  engine.clear();
  EXPECT_EQ(engine.plan_count(), 0u);
  EXPECT_EQ(engine.cache_size(), 0u);
  EXPECT_EQ(engine.cache_stats().hits, 0u);
  EXPECT_EQ(engine.cache_stats().misses, 0u);
}

/// The acceptance-scale scenario: 24 devices, 2 surfaces.
core::DenseDeploymentScenario acceptance_scenario() {
  return core::dense_deployment_scenario(24, 2);
}

TEST(DeploymentEngine, OptimizesEveryDeviceThroughOneSharedEngine) {
  const core::DenseDeploymentScenario scenario = acceptance_scenario();
  DeploymentEngine engine{scenario.config};
  const DeploymentReport report = engine.run(scenario.devices);

  ASSERT_EQ(report.devices.size(), 24u);
  const int expected_probes = scenario.config.sweep.iterations *
                              scenario.config.sweep.steps_per_axis *
                              scenario.config.sweep.steps_per_axis;
  for (const DeviceResult& d : report.devices) {
    EXPECT_EQ(d.sweep.probes, expected_probes) << d.name;
    EXPECT_GE(d.sweep.best_vx.value(), 0.0);
    EXPECT_LE(d.sweep.best_vx.value(), 30.0);
    EXPECT_GE(d.sweep.best_vy.value(), 0.0);
    EXPECT_LE(d.sweep.best_vy.value(), 30.0);
    EXPECT_LT(d.surface, 2u);
  }

  // One transmissive plan serves all 24 links; every device after the first
  // draws its whole first Algorithm-1 window (T^2 cells) from the memo.
  EXPECT_EQ(report.plan_count, 1u);
  const std::uint64_t t2 = static_cast<std::uint64_t>(
      scenario.config.sweep.steps_per_axis *
      scenario.config.sweep.steps_per_axis);
  EXPECT_GE(report.cache_stats.hits, 23u * t2);

  // Every device is scheduled exactly once on its own surface.
  ASSERT_EQ(report.surfaces.size(), 2u);
  std::vector<int> scheduled(report.devices.size(), 0);
  for (const SurfaceReport& sr : report.surfaces) {
    ASSERT_EQ(sr.scheduled_power.size(), sr.device_ids.size());
    double airtime = 0.0;
    std::size_t members = 0;
    for (const control::ScheduleSlot& slot : sr.slots) {
      airtime += slot.slot_fraction;
      members += slot.device_indices.size();
      for (std::size_t k : slot.device_indices) {
        ASSERT_LT(k, sr.device_ids.size());
        ++scheduled[sr.device_ids[k]];
      }
    }
    EXPECT_EQ(members, sr.device_ids.size());
    EXPECT_NEAR(airtime, 1.0, 1e-9);
  }
  for (std::size_t i = 0; i < scheduled.size(); ++i)
    EXPECT_EQ(scheduled[i], 1) << "device " << i;

  EXPECT_GT(report.sum_capacity_bits_per_hz,
            report.unassisted_capacity_bits_per_hz);
}

TEST(DeploymentEngine, ByteIdenticalForAnyThreadCount) {
  const core::DenseDeploymentScenario scenario = acceptance_scenario();
  deploy::DeploymentConfig serial_cfg = scenario.config;
  serial_cfg.threads = 1;
  deploy::DeploymentConfig parallel_cfg = scenario.config;
  parallel_cfg.threads = 5;
  DeploymentEngine serial{serial_cfg};
  DeploymentEngine parallel{parallel_cfg};
  const DeploymentReport a = serial.run(scenario.devices);
  const DeploymentReport b = parallel.run(scenario.devices);

  ASSERT_EQ(a.devices.size(), b.devices.size());
  for (std::size_t i = 0; i < a.devices.size(); ++i) {
    // Byte-identical, not merely close.
    EXPECT_EQ(a.devices[i].sweep.best_vx.value(),
              b.devices[i].sweep.best_vx.value());
    EXPECT_EQ(a.devices[i].sweep.best_vy.value(),
              b.devices[i].sweep.best_vy.value());
    EXPECT_EQ(a.devices[i].sweep.best_power.value(),
              b.devices[i].sweep.best_power.value());
    EXPECT_EQ(a.devices[i].unoptimized_power.value(),
              b.devices[i].unoptimized_power.value());
    EXPECT_EQ(a.devices[i].surface, b.devices[i].surface);
  }
  EXPECT_EQ(a.sum_capacity_bits_per_hz, b.sum_capacity_bits_per_hz);
  EXPECT_EQ(a.mean_ber, b.mean_ber);
}

TEST(DeploymentEngine, RepeatedRunsOnWarmCacheAreIdentical) {
  const core::DenseDeploymentScenario scenario =
      core::dense_deployment_scenario(6, 1);
  DeploymentEngine engine{scenario.config};
  const DeploymentReport cold = engine.run(scenario.devices);
  const DeploymentReport warm = engine.run(scenario.devices);
  ASSERT_EQ(cold.devices.size(), warm.devices.size());
  for (std::size_t i = 0; i < cold.devices.size(); ++i) {
    EXPECT_EQ(cold.devices[i].sweep.best_vx.value(),
              warm.devices[i].sweep.best_vx.value());
    EXPECT_EQ(cold.devices[i].sweep.best_power.value(),
              warm.devices[i].sweep.best_power.value());
  }
  // The warm pass is served almost entirely from the memo.
  EXPECT_GT(warm.cache_stats.hits, cold.cache_stats.hits);
}

TEST(DeploymentEngine, AgreesWithPerDeviceLlamaSystem) {
  // Equal measurement model: LlamaSystem::optimize_link_batched runs the
  // identical batched Algorithm-1 round through its private (re-planned,
  // unquantized) pipeline. The shared engine evaluates at 1 mV-quantized
  // biases, so powers may differ at the quantization scale — far below any
  // physical sensitivity — and the chosen biases must coincide.
  const core::DenseDeploymentScenario scenario =
      core::dense_deployment_scenario(4, 1);
  DeploymentEngine engine{scenario.config};
  const DeploymentReport report = engine.run(scenario.devices);

  for (std::size_t i = 0; i < scenario.devices.size(); ++i) {
    core::SystemConfig cfg;
    cfg.frequency = scenario.config.frequency;
    cfg.tx_power = scenario.config.tx_power;
    cfg.tx_antenna = scenario.config.tx_antenna;
    cfg.rx_antenna = scenario.config.rx_antenna.oriented(
        scenario.devices[i].orientation);
    cfg.geometry = scenario.config.geometry;
    cfg.environment = scenario.config.environment;
    cfg.receiver = scenario.config.receiver;
    cfg.controller.sweep = scenario.config.sweep;
    core::LlamaSystem sys{cfg};
    const control::OptimizationReport expected = sys.optimize_link_batched();
    EXPECT_NEAR(report.devices[i].sweep.best_vx.value(),
                expected.sweep.best_vx.value(), 2e-3)
        << scenario.devices[i].name;
    EXPECT_NEAR(report.devices[i].sweep.best_vy.value(),
                expected.sweep.best_vy.value(), 2e-3);
    EXPECT_NEAR(report.devices[i].sweep.best_power.value(),
                expected.sweep.best_power.value(), 1e-3);
  }
}

TEST(DeploymentEngine, ExplicitSurfaceAssignmentIsHonored) {
  core::DenseDeploymentScenario scenario =
      core::dense_deployment_scenario(4, 2);
  scenario.devices[0].surface = 1;
  scenario.devices[1].surface = 1;
  scenario.devices[2].surface = 0;
  scenario.devices[3].surface = 0;
  DeploymentEngine engine{scenario.config};
  const DeploymentReport report = engine.run(scenario.devices);
  EXPECT_EQ(report.devices[0].surface, 1u);
  EXPECT_EQ(report.devices[1].surface, 1u);
  EXPECT_EQ(report.devices[2].surface, 0u);
  EXPECT_EQ(report.devices[3].surface, 0u);
}

TEST(DeploymentEngine, LeakageDisabledReportsNoLeakage) {
  const core::DenseDeploymentScenario scenario =
      core::dense_deployment_scenario(6, 2);
  DeploymentEngine engine{scenario.config};
  const DeploymentReport report = engine.run(scenario.devices);
  EXPECT_EQ(report.total_leakage.value(), 0.0);
  EXPECT_EQ(report.max_leakage.value(), 0.0);
  for (const DeviceResult& d : report.devices)
    EXPECT_EQ(d.leakage.value(), 0.0);
}

TEST(DeploymentEngine, LeakageChargesEveryLinkAndCostsCapacity) {
  core::DenseDeploymentScenario off = core::dense_deployment_scenario(8, 2);
  core::DenseDeploymentScenario on = core::dense_deployment_scenario(8, 2);
  on.config.interference.enable_leakage = true;

  DeploymentEngine engine_off{off.config};
  DeploymentEngine engine_on{on.config};
  const DeploymentReport report_off = engine_off.run(off.devices);
  const DeploymentReport report_on = engine_on.run(on.devices);

  // Quiet-neighbor optimization: the chosen biases are identical — leakage
  // enters only as per-link interference over the final schedules.
  ASSERT_EQ(report_on.devices.size(), report_off.devices.size());
  double sum_mw = 0.0;
  for (std::size_t i = 0; i < report_on.devices.size(); ++i) {
    EXPECT_EQ(report_on.devices[i].sweep.best_vx.value(),
              report_off.devices[i].sweep.best_vx.value());
    EXPECT_EQ(report_on.devices[i].sweep.best_vy.value(),
              report_off.devices[i].sweep.best_vy.value());
    // Every device has one serving and one interfering surface at M = 2.
    EXPECT_GT(report_on.devices[i].leakage.value(), 0.0) << "device " << i;
    EXPECT_LE(report_on.devices[i].leakage.value(),
              report_on.max_leakage.value());
    sum_mw += report_on.devices[i].leakage.value();
  }
  EXPECT_NEAR(report_on.total_leakage.value(), sum_mw, 1e-15);
  // Interference can only cost capacity, and measurably does here.
  EXPECT_LT(report_on.sum_capacity_bits_per_hz,
            report_off.sum_capacity_bits_per_hz);
  EXPECT_GE(report_on.mean_ber, report_off.mean_ber);
}

TEST(DeploymentEngine, SingleSurfaceDeploymentHasNoLeakage) {
  core::DenseDeploymentScenario scenario = core::dense_deployment_scenario(4, 1);
  scenario.config.interference.enable_leakage = true;
  DeploymentEngine engine{scenario.config};
  const DeploymentReport report = engine.run(scenario.devices);
  EXPECT_EQ(report.total_leakage.value(), 0.0);
}

TEST(DeploymentEngine, LeakageRunIsByteIdenticalForAnyThreadCount) {
  core::DenseDeploymentScenario scenario = core::dense_deployment_scenario(6, 2);
  scenario.config.interference.enable_leakage = true;
  deploy::DeploymentConfig serial = scenario.config;
  serial.threads = 1;
  deploy::DeploymentConfig parallel = scenario.config;
  parallel.threads = 4;
  DeploymentEngine engine_serial{serial};
  DeploymentEngine engine_parallel{parallel};
  const DeploymentReport a = engine_serial.run(scenario.devices);
  const DeploymentReport b = engine_parallel.run(scenario.devices);
  ASSERT_EQ(a.devices.size(), b.devices.size());
  for (std::size_t i = 0; i < a.devices.size(); ++i) {
    EXPECT_EQ(a.devices[i].optimized_power.value(),
              b.devices[i].optimized_power.value());
    EXPECT_EQ(a.devices[i].leakage.value(), b.devices[i].leakage.value());
  }
  EXPECT_EQ(a.sum_capacity_bits_per_hz, b.sum_capacity_bits_per_hz);
  EXPECT_EQ(a.total_leakage.value(), b.total_leakage.value());
}

TEST(DeploymentEngine, RejectsBadConfigurations) {
  core::DenseDeploymentScenario scenario =
      core::dense_deployment_scenario(2, 1);
  deploy::DeploymentConfig no_surfaces = scenario.config;
  no_surfaces.n_surfaces = 0;
  DeploymentEngine empty{no_surfaces};
  EXPECT_THROW((void)empty.run(scenario.devices), std::invalid_argument);

  DeploymentEngine engine{scenario.config};
  scenario.devices[1].surface = 3;  // only 1 surface exists
  EXPECT_THROW((void)engine.run(scenario.devices), std::out_of_range);
}

}  // namespace
}  // namespace llama::deploy
