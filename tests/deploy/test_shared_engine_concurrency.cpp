// Regression for the ResponseCache statistics under concurrency: the
// counters are relaxed atomics, so (a) a monitor may poll cache_stats()
// while device shards are inside SharedResponseEngine's two-lock grid path
// without tearing or serializing, and (b) no increment is ever lost — after
// the dust settles, hits + misses equals the exact number of lookups
// issued, for any interleaving.
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/deploy/deployment_engine.h"
#include "src/metasurface/designs.h"

namespace llama::deploy {
namespace {

using common::Frequency;
using common::Voltage;
using metasurface::SurfaceMode;

TEST(SharedEngineConcurrency, StatsStayConsistentUnderConcurrentReaders) {
  SharedResponseEngine engine{metasurface::prototype_fr4_design()};
  const Frequency f = Frequency::ghz(2.44);

  constexpr int kPointThreads = 4;
  constexpr int kPointLookups = 200;
  constexpr int kGridThreads = 2;
  constexpr int kGridWindows = 8;
  const std::vector<double> window{0.0, 10.0, 20.0, 30.0};

  // Point-probe workers cycle a small key set (first pass misses, the rest
  // hit); grid workers issue whole windows through the two-lock path.
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < kPointThreads; ++t)
    workers.emplace_back([&, t] {
      while (!go.load()) {
      }
      for (int i = 0; i < kPointLookups; ++i) {
        const double v = static_cast<double>((t + i) % 8);
        (void)engine.response(f, SurfaceMode::kTransmissive, Voltage{v},
                              Voltage{v});
      }
    });
  for (int t = 0; t < kGridThreads; ++t)
    workers.emplace_back([&] {
      while (!go.load()) {
      }
      for (int i = 0; i < kGridWindows; ++i)
        (void)engine.response_grid(f, SurfaceMode::kTransmissive, window,
                                   window);
    });

  // The monitor polls concurrently; counters must be monotone (no torn or
  // rolled-back reads) the whole time.
  std::atomic<bool> done{false};
  std::thread monitor{[&] {
    std::uint64_t last_total = 0;
    while (!done.load()) {
      const metasurface::ResponseCacheStats s = engine.cache_stats();
      const std::uint64_t total = s.hits + s.misses;
      EXPECT_GE(total, last_total);
      last_total = total;
    }
  }};

  go.store(true);
  for (std::thread& w : workers) w.join();
  done.store(true);
  monitor.join();

  // Every lookup counted exactly once: one find() per point probe, one per
  // grid cell in the window's first pass.
  const std::uint64_t expected_lookups =
      static_cast<std::uint64_t>(kPointThreads) * kPointLookups +
      static_cast<std::uint64_t>(kGridThreads) * kGridWindows *
          window.size() * window.size();
  const metasurface::ResponseCacheStats s = engine.cache_stats();
  EXPECT_EQ(s.hits + s.misses, expected_lookups);
  EXPECT_GT(s.hits, 0u);
  EXPECT_GT(s.misses, 0u);
  EXPECT_EQ(s.evictions, 0u);  // capacity far exceeds the key set
}

}  // namespace
}  // namespace llama::deploy
