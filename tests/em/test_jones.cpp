#include "src/em/jones.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/constants.h"

namespace llama::em {
namespace {

using common::Angle;

constexpr double kTol = 1e-10;

TEST(JonesVector, LinearStatesHaveUnitPower) {
  for (double deg : {0.0, 30.0, 45.0, 90.0, 135.0})
    EXPECT_NEAR(JonesVector::linear(Angle::degrees(deg)).power(), 1.0, kTol);
}

TEST(JonesVector, HorizontalVerticalAreOrthogonal) {
  const auto h = JonesVector::horizontal();
  const auto v = JonesVector::vertical();
  EXPECT_NEAR(std::abs(h.dot(v)), 0.0, kTol);
  EXPECT_NEAR(h.polarization_match(v), 0.0, kTol);
}

TEST(JonesVector, MalusLawForLinearPair) {
  // PLF between two linear states at relative angle phi is cos^2(phi).
  for (double phi : {0.0, 15.0, 30.0, 45.0, 60.0, 75.0, 90.0}) {
    const auto a = JonesVector::linear(Angle::degrees(0.0));
    const auto b = JonesVector::linear(Angle::degrees(phi));
    const double expected = std::pow(std::cos(phi * common::kPi / 180.0), 2);
    EXPECT_NEAR(a.polarization_match(b), expected, 1e-9) << "phi=" << phi;
  }
}

TEST(JonesVector, CircularAgainstLinearLosesThreeDb) {
  // Paper Section 2: "Theoretical 3 dB degradation ... when one of the
  // antennas is circularly polarized while the other is linearly polarized".
  const auto c = JonesVector::circular_right();
  for (double deg : {0.0, 45.0, 90.0}) {
    const auto lin = JonesVector::linear(Angle::degrees(deg));
    EXPECT_NEAR(c.polarization_match(lin), 0.5, 1e-9);
  }
}

TEST(JonesVector, CircularStatesAreOrthogonal) {
  EXPECT_NEAR(JonesVector::circular_right().polarization_match(
                  JonesVector::circular_left()),
              0.0, kTol);
}

TEST(JonesVector, CircularityIdentifiesHandedness) {
  EXPECT_NEAR(JonesVector::circular_right().circularity(), -1.0, kTol);
  EXPECT_NEAR(JonesVector::circular_left().circularity(), 1.0, kTol);
  EXPECT_NEAR(JonesVector::horizontal().circularity(), 0.0, kTol);
}

TEST(JonesVector, OrientationOfLinearStates) {
  for (double deg : {0.0, 20.0, 45.0, 80.0}) {
    const auto v = JonesVector::linear(Angle::degrees(deg));
    EXPECT_NEAR(v.orientation().deg(), deg, 1e-9);
  }
}

TEST(JonesVector, NormalizedHasUnitPower) {
  const JonesVector v{Complex{3.0, 1.0}, Complex{-2.0, 0.5}};
  EXPECT_NEAR(v.normalized().power(), 1.0, kTol);
}

TEST(JonesVector, NormalizedZeroVectorStaysZero) {
  const JonesVector z{Complex{0.0, 0.0}, Complex{0.0, 0.0}};
  EXPECT_NEAR(z.normalized().power(), 0.0, kTol);
}

TEST(JonesVector, EllipticalMatchesPaperEquationOne) {
  // Paper Eq. 1: J = [a, b e^{j pi/2}]^T.
  const auto v = JonesVector::elliptical(0.6, 0.8);
  EXPECT_NEAR(v.power(), 1.0, kTol);
  EXPECT_NEAR(std::real(v.ex()), 0.6, kTol);
  EXPECT_NEAR(std::real(v.ey()), 0.0, kTol);
  EXPECT_NEAR(std::imag(v.ey()), 0.8, kTol);
}

TEST(JonesMatrix, RotationMatrixRotatesLinearStates) {
  const auto r = JonesMatrix::rotation(Angle::degrees(30.0));
  const auto out = r * JonesVector::linear(Angle::degrees(10.0));
  EXPECT_NEAR(out.orientation().deg(), 40.0, 1e-9);
}

TEST(JonesMatrix, RotationIsUnitary) {
  EXPECT_TRUE(JonesMatrix::rotation(Angle::degrees(73.0)).is_unitary());
}

TEST(JonesMatrix, RotationsCompose) {
  const auto r1 = JonesMatrix::rotation(Angle::degrees(20.0));
  const auto r2 = JonesMatrix::rotation(Angle::degrees(25.0));
  const auto both = r2 * r1;
  EXPECT_NEAR(rotation_angle_of(both).deg(), 45.0, 1e-9);
}

TEST(JonesMatrix, QuarterWavePlateIsUnitary) {
  EXPECT_TRUE(JonesMatrix::quarter_wave_plate().is_unitary());
}

TEST(JonesMatrix, QwpAt45ConvertsLinearToCircular) {
  const auto qwp45 =
      JonesMatrix::quarter_wave_plate().rotated(Angle::degrees(45.0));
  const auto out = qwp45 * JonesVector::horizontal();
  EXPECT_NEAR(std::abs(out.circularity()), 1.0, 1e-9);
}

TEST(JonesMatrix, LinearPolarizerProjects) {
  const auto p = JonesMatrix::linear_polarizer(Angle::degrees(0.0));
  const auto out = p * JonesVector::linear(Angle::degrees(60.0));
  // cos^2(60 deg) = 1/4 of the power passes.
  EXPECT_NEAR(out.power(), 0.25, 1e-9);
  EXPECT_NEAR(out.orientation().deg(), 0.0, 1e-9);
}

TEST(JonesMatrix, PolarizerIsPassiveNotUnitary) {
  const auto p = JonesMatrix::linear_polarizer(Angle::degrees(30.0));
  EXPECT_FALSE(p.is_unitary());
  EXPECT_LE(p.norm_bound(), 1.0 + 1e-9);
}

TEST(JonesMatrix, NormBoundOfScaledIdentity) {
  const auto m = Complex{0.5, 0.0} * JonesMatrix::identity();
  EXPECT_NEAR(m.norm_bound(), 0.25, 1e-9);  // largest |s|^2
}

TEST(JonesMatrix, TransposeAndAdjointAgree) {
  const JonesMatrix m{Complex{1.0, 2.0}, Complex{3.0, -1.0}, Complex{0.5, 0.5},
                      Complex{-2.0, 0.0}};
  EXPECT_EQ(m.transpose().at(0, 1), m.at(1, 0));
  EXPECT_EQ(m.adjoint().at(0, 1), std::conj(m.at(1, 0)));
}

TEST(JonesMatrix, DeterminantOfRotationIsOne) {
  const auto r = JonesMatrix::rotation(Angle::degrees(51.0));
  EXPECT_NEAR(std::abs(r.determinant()), 1.0, kTol);
}

/// The paper's central algebraic result (Eq. 8): QWP(+45) B(delta) QWP(-45)
/// is a pure rotation by delta/2, up to a common phase.
class PolarizationRotatorProperty : public ::testing::TestWithParam<double> {};

TEST_P(PolarizationRotatorProperty, RotatesByHalfDelta) {
  const double delta_deg = GetParam();
  const auto p =
      polarization_rotator(delta_deg * common::kPi / 180.0, 0.3, -0.7);
  // Magnitude of every input state is preserved (unitary composite)...
  EXPECT_TRUE((std::abs(p.determinant()) - 1.0) < 1e-9);
  // ...and a linear input emerges rotated by delta/2.
  const auto in = JonesVector::linear(Angle::degrees(20.0));
  const auto out = p * in;
  EXPECT_NEAR(out.power(), 1.0, 1e-9);
  const double got =
      common::Angle::degrees(out.orientation().deg() - 20.0)
          .normalized_signed()
          .deg();
  double expect = delta_deg / 2.0;
  // Orientation is only defined mod 180.
  double diff = std::fmod(std::abs(got - expect), 180.0);
  if (diff > 90.0) diff = 180.0 - diff;
  EXPECT_NEAR(diff, 0.0, 1e-6) << "delta=" << delta_deg;
}

INSTANTIATE_TEST_SUITE_P(DeltaSweep, PolarizationRotatorProperty,
                         ::testing::Values(-120.0, -90.0, -45.0, -10.0, 0.0,
                                           3.8, 23.2, 48.7, 90.0, 97.4,
                                           120.0));

TEST(PolarizationRotator, MatchesRotationAngleExtraction) {
  for (double delta_deg : {10.0, 40.0, 80.0}) {
    const auto p = polarization_rotator(delta_deg * common::kPi / 180.0);
    EXPECT_NEAR(rotation_angle_of(p).deg(), delta_deg / 2.0, 1e-6);
  }
}

TEST(PolarizationRotator, ZeroDeltaIsIdentityUpToPhase) {
  const auto p = polarization_rotator(0.0);
  EXPECT_NEAR(std::abs(p.at(0, 1)), 0.0, 1e-9);
  EXPECT_NEAR(std::abs(p.at(1, 0)), 0.0, 1e-9);
  EXPECT_NEAR(std::abs(p.at(0, 0)), 1.0, 1e-9);
}

}  // namespace
}  // namespace llama::em
