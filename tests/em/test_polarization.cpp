#include "src/em/polarization.h"

#include <gtest/gtest.h>

#include <cmath>

namespace llama::em {
namespace {

using common::Angle;

TEST(Stokes, PureLinearState) {
  const auto s = Stokes::from_jones(JonesVector::horizontal());
  EXPECT_NEAR(s.s0, 1.0, 1e-12);
  EXPECT_NEAR(s.s1, 1.0, 1e-12);
  EXPECT_NEAR(s.s2, 0.0, 1e-12);
  EXPECT_NEAR(s.s3, 0.0, 1e-12);
  EXPECT_NEAR(s.degree_of_polarization(), 1.0, 1e-12);
}

TEST(Stokes, FortyFiveDegreeState) {
  const auto s =
      Stokes::from_jones(JonesVector::linear(Angle::degrees(45.0)));
  EXPECT_NEAR(s.s1, 0.0, 1e-12);
  EXPECT_NEAR(s.s2, 1.0, 1e-12);
}

TEST(Stokes, CircularState) {
  const auto s = Stokes::from_jones(JonesVector::circular_left());
  EXPECT_NEAR(s.s3, 1.0, 1e-12);
  EXPECT_NEAR(s.s1, 0.0, 1e-12);
}

TEST(Stokes, ZeroFieldHasZeroDop) {
  const auto s =
      Stokes::from_jones(JonesVector{Complex{0, 0}, Complex{0, 0}});
  EXPECT_DOUBLE_EQ(s.degree_of_polarization(), 0.0);
}

TEST(AntennaPolarization, PerfectLinearHasNoLeak) {
  const auto ideal = AntennaPolarization::linear(Angle::degrees(0.0),
                                                 /*xpd_db=*/300.0);
  const auto orthogonal = JonesVector::vertical();
  EXPECT_LT(ideal.match(orthogonal), 1e-12);
}

TEST(AntennaPolarization, XpdSetsTheMismatchFloor) {
  // Two orthogonal 20 dB-XPD antennas leak ~4 eps^2 ~= -14 dB into each
  // other — the paper's Fig. 2 mismatch penalty scale.
  const auto a = AntennaPolarization::linear(Angle::degrees(0.0), 20.0);
  const auto b = AntennaPolarization::linear(Angle::degrees(90.0), 20.0);
  const double floor = a.match(b.jones());
  EXPECT_GT(floor, 1e-3);
  EXPECT_LT(floor, 0.1);
}

TEST(AntennaPolarization, BetterXpdMeansDeeperFloor) {
  const auto rx17 = AntennaPolarization::linear(Angle::degrees(90.0), 17.0);
  const auto rx26 = AntennaPolarization::linear(Angle::degrees(90.0), 26.0);
  const auto tx = AntennaPolarization::linear(Angle::degrees(0.0), 300.0);
  EXPECT_GT(rx17.match(tx.jones()), rx26.match(tx.jones()));
}

TEST(AntennaPolarization, MatchedPairIsNearUnity) {
  const auto a = AntennaPolarization::linear(Angle::degrees(35.0));
  EXPECT_NEAR(a.match(a.jones()), 1.0, 1e-9);
}

TEST(AntennaPolarization, MatchLossDbOfMatchedPairIsZeroish) {
  const auto a = AntennaPolarization::linear(Angle::degrees(0.0));
  EXPECT_LT(a.match_loss_db(a.jones()).value(), 0.1);
}

TEST(AntennaPolarization, MatchLossClampsAtFloor) {
  const auto a = AntennaPolarization::linear(Angle::degrees(0.0), 300.0);
  const auto b = JonesVector::vertical();
  EXPECT_NEAR(a.match_loss_db(b, 60.0).value(), 60.0, 1e-9);
}

TEST(AntennaPolarization, CircularMatchesAnyLinearAtHalf) {
  const auto c = AntennaPolarization::circular();
  for (double deg : {0.0, 30.0, 90.0}) {
    EXPECT_NEAR(
        c.match(JonesVector::linear(Angle::degrees(deg))), 0.5, 1e-9);
  }
}

TEST(AntennaPolarization, RotationShiftsOrientationKeepsXpd) {
  const auto a = AntennaPolarization::linear(Angle::degrees(10.0), 22.0);
  const auto r = a.rotated(Angle::degrees(35.0));
  EXPECT_NEAR(r.orientation().deg(), 45.0, 1e-9);
  EXPECT_NEAR(r.xpd_db(), 22.0, 1e-12);
}

TEST(AntennaPolarization, RotatingCircularIsNoop) {
  const auto c = AntennaPolarization::circular();
  const auto r = c.rotated(Angle::degrees(45.0));
  EXPECT_EQ(r.kind(), PolarizationKind::kCircular);
}

TEST(AntennaPolarization, DescribeMentionsKind) {
  EXPECT_NE(AntennaPolarization::linear(Angle::degrees(45.0))
                .describe()
                .find("linear"),
            std::string::npos);
  EXPECT_NE(AntennaPolarization::circular().describe().find("circular"),
            std::string::npos);
}

TEST(MismatchAngle, FoldsModuloNinety) {
  EXPECT_NEAR(
      mismatch_angle(Angle::degrees(0.0), Angle::degrees(90.0)).deg(), 90.0,
      1e-9);
  EXPECT_NEAR(
      mismatch_angle(Angle::degrees(0.0), Angle::degrees(135.0)).deg(), 45.0,
      1e-9);
  EXPECT_NEAR(
      mismatch_angle(Angle::degrees(170.0), Angle::degrees(10.0)).deg(), 20.0,
      1e-9);
  EXPECT_NEAR(
      mismatch_angle(Angle::degrees(30.0), Angle::degrees(210.0)).deg(), 0.0,
      1e-9);
}

/// Property: polarization match between two XPD-limited linear antennas is
/// monotone decreasing in mismatch angle on [0, 90].
class MatchMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(MatchMonotonicity, DecreasesWithMismatch) {
  const double step = GetParam();
  const auto tx = AntennaPolarization::linear(Angle::degrees(0.0), 24.0);
  double prev = 2.0;
  for (double deg = 0.0; deg <= 90.0; deg += step) {
    const auto rx = AntennaPolarization::linear(Angle::degrees(deg), 24.0);
    const double m = rx.match(tx.jones());
    EXPECT_LT(m, prev + 1e-9) << "deg=" << deg;
    prev = m;
  }
}

INSTANTIATE_TEST_SUITE_P(Steps, MatchMonotonicity,
                         ::testing::Values(5.0, 10.0, 15.0, 30.0));

}  // namespace
}  // namespace llama::em
