#include "src/fault/fault_injector.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/core/llama_system.h"
#include "src/core/scenarios.h"

namespace llama::fault {
namespace {

using common::Voltage;

TEST(FaultInjector, OverlappingEventsAggregateConservatively) {
  FaultPlan plan;
  plan.events = {
      stuck_cells_event(0, 0.02, Voltage{0.0}, Voltage{0.0}),
      stuck_cells_event(0, 0.10, Voltage{5.0}, Voltage{5.0}),
      supply_brownout_event(0, Voltage{20.0}, 0.0, 10.0),
      supply_brownout_event(0, Voltage{12.0}, 0.0, 10.0),
      flaky_switch_event(0, 0.1, 0.0, 10.0),
      flaky_switch_event(kAllSurfaces, 0.4, 0.0, 10.0),
  };
  const FaultInjector injector{plan};
  const SurfaceFaultState s0 = injector.surface_state(0, 1.0);
  ASSERT_TRUE(s0.stuck.has_value());
  EXPECT_DOUBLE_EQ(s0.stuck->fraction, 0.10);  // largest fraction wins
  ASSERT_TRUE(s0.brownout_clamp.has_value());
  EXPECT_DOUBLE_EQ(s0.brownout_clamp->value(), 12.0);  // lowest clamp wins
  EXPECT_DOUBLE_EQ(s0.switch_fail_probability, 0.4);   // highest odds win
  EXPECT_FALSE(s0.offline);

  // Surface 1 only sees the wildcard event.
  const SurfaceFaultState s1 = injector.surface_state(1, 1.0);
  EXPECT_FALSE(s1.stuck.has_value());
  EXPECT_FALSE(s1.brownout_clamp.has_value());
  EXPECT_DOUBLE_EQ(s1.switch_fail_probability, 0.4);

  // Outside every window the state is clean.
  const SurfaceFaultState late = injector.surface_state(0, 10.0);
  EXPECT_TRUE(late.stuck.has_value());  // stuck event never ends
  EXPECT_FALSE(late.brownout_clamp.has_value());
  EXPECT_DOUBLE_EQ(late.switch_fail_probability, 0.0);
}

TEST(FaultInjector, DropoutDrawsAreSeededStatelessAndPerDevice) {
  FaultPlan plan;
  plan.seed = 0xBEEFULL;
  plan.events = {measurement_dropout_event(0.3)};
  const FaultInjector a{plan};
  const FaultInjector b{plan};

  int dropped = 0;
  for (long tick = 0; tick < 200; ++tick) {
    // Pure function of (seed, device, tick): independent instances agree,
    // and query order is irrelevant.
    EXPECT_EQ(a.measurement_dropped(0, 0, tick, 1.0),
              b.measurement_dropped(0, 0, tick, 1.0));
    if (a.measurement_dropped(0, 0, tick, 1.0)) ++dropped;
  }
  // p = 0.3 over 200 ticks: comfortably between "never" and "always".
  EXPECT_GT(dropped, 20);
  EXPECT_LT(dropped, 120);

  // Devices draw from decorrelated streams.
  std::vector<bool> d0, d1;
  for (long tick = 0; tick < 64; ++tick) {
    d0.push_back(a.measurement_dropped(0, 0, tick, 1.0));
    d1.push_back(a.measurement_dropped(1, 0, tick, 1.0));
  }
  EXPECT_NE(d0, d1);

  // A different seed replays a different schedule.
  FaultPlan reseeded = plan;
  reseeded.seed = 0xBEE0ULL;
  const FaultInjector c{reseeded};
  std::vector<bool> d0c;
  for (long tick = 0; tick < 64; ++tick)
    d0c.push_back(c.measurement_dropped(0, 0, tick, 1.0));
  EXPECT_NE(d0, d0c);
}

TEST(FaultInjector, ProbabilityEndpointsAreExact) {
  FaultPlan plan;
  plan.events = {measurement_dropout_event(1.0),
                 measurement_spike_event(0.0, 10.0)};
  const FaultInjector injector{plan};
  for (long tick = 0; tick < 32; ++tick) {
    EXPECT_TRUE(injector.measurement_dropped(3, 0, tick, 0.5));
    EXPECT_DOUBLE_EQ(injector.measurement_spike_db(3, 0, tick, 0.5), 0.0);
  }
}

TEST(FaultInjector, SpikesRespectWindowAndMagnitude) {
  FaultPlan plan;
  plan.events = {measurement_spike_event(1.0, 12.0, 2.0)};
  plan.events[0].t_end_s = 4.0;
  const FaultInjector injector{plan};
  EXPECT_DOUBLE_EQ(injector.measurement_spike_db(0, 0, 0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(injector.measurement_spike_db(0, 0, 20, 2.0), 12.0);
  EXPECT_DOUBLE_EQ(injector.measurement_spike_db(0, 0, 40, 4.0), 0.0);
}

TEST(FaultInjector, CodebookCorruptWinsOverStale) {
  FaultPlan plan;
  plan.events = {codebook_corrupt_event(0, 0.0, 5.0)};
  FaultEvent stale = codebook_corrupt_event(0, 0.0, 10.0);
  stale.kind = FaultKind::kCodebookStale;
  plan.events.push_back(stale);
  const FaultInjector injector{plan};
  EXPECT_EQ(injector.codebook_fault(0, 1.0), FaultKind::kCodebookCorrupt);
  EXPECT_EQ(injector.codebook_fault(0, 7.0), FaultKind::kCodebookStale);
  EXPECT_EQ(injector.codebook_fault(0, 12.0), std::nullopt);
  EXPECT_EQ(injector.codebook_fault(1, 1.0), std::nullopt);
}

TEST(FaultInjector, ApplyToPushesAndClearsThePlantState) {
  FaultPlan plan;
  plan.seed = 0x1234ULL;
  plan.events = {
      stuck_cells_event(0, 0.25, Voltage{3.0}, Voltage{4.0}, 0.0),
      supply_brownout_event(0, Voltage{9.0}, 0.0, 5.0),
      flaky_switch_event(0, 0.5, 0.0, 5.0),
  };
  plan.events[0].t_end_s = 5.0;
  const FaultInjector injector{plan};

  core::LlamaSystem system{core::transmissive_mismatch_config()};
  injector.apply_to(system, /*device=*/2, /*surface=*/0, /*t_s=*/1.0);
  EXPECT_TRUE(system.surface_online());
  ASSERT_TRUE(system.surface().stuck_cells().has_value());
  EXPECT_DOUBLE_EQ(system.surface().stuck_cells()->fraction, 0.25);
  ASSERT_TRUE(system.supply().fault_state().has_value());
  EXPECT_DOUBLE_EQ(system.supply().fault_state()->brownout_clamp->value(),
                   9.0);
  EXPECT_DOUBLE_EQ(system.supply().fault_state()->switch_fail_probability,
                   0.5);
  // Supply draws are keyed per device so shards stay independent.
  EXPECT_EQ(system.supply().fault_state()->fault_seed,
            plan.seed ^ (0x9E3779B97F4A7C15ULL * 3ULL));

  // After every window closes the same call scrubs the plant clean.
  injector.apply_to(system, 2, 0, 6.0);
  EXPECT_TRUE(system.surface_online());
  EXPECT_FALSE(system.surface().stuck_cells().has_value());
  EXPECT_FALSE(system.supply().fault_state().has_value());
}

TEST(FaultInjector, OfflineSurfaceDropsOutOfItsOwnChannel) {
  FaultPlan plan;
  plan.events = {surface_offline_event(0, 2.0)};
  const FaultInjector injector{plan};

  core::LlamaSystem faulted{core::transmissive_mismatch_config()};
  (void)faulted.optimize_link();

  // Reference: an identical link whose surface is marked offline directly.
  core::LlamaSystem direct{core::transmissive_mismatch_config()};
  direct.set_surface_online(false);
  const double direct_dbm = direct.expected_measure_with_surface().value();

  injector.apply_to(faulted, 0, 0, 3.0);
  EXPECT_FALSE(faulted.surface_online());
  // A crashed surface contributes nothing: the expected measurement equals
  // the direct-path-only figure regardless of the optimized bias.
  EXPECT_DOUBLE_EQ(faulted.expected_measure_with_surface().value(),
                   direct_dbm);

  // The crash is time-gated: before t_start the surface serves normally.
  injector.apply_to(faulted, 0, 0, 1.0);
  EXPECT_TRUE(faulted.surface_online());
  EXPECT_GT(faulted.expected_measure_with_surface().value(),
            direct_dbm + 5.0);
}

TEST(FaultInjector, RejectsInvalidPlansAtConstruction) {
  FaultPlan plan;
  plan.events = {measurement_dropout_event(0.5)};
  plan.events[0].probability = 2.0;
  EXPECT_THROW(FaultInjector{plan}, FaultPlanFormatError);
}

}  // namespace
}  // namespace llama::fault
