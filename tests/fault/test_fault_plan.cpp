#include "src/fault/fault_plan.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace llama::fault {
namespace {

using common::Voltage;

FaultPlan make_test_plan() {
  FaultPlan plan;
  plan.seed = 0xD811'11A0ULL;
  plan.events = {
      measurement_dropout_event(0.05),
      measurement_spike_event(0.02, 12.0, 1.5),
      stuck_cells_event(0, 0.01, Voltage{0.0}, Voltage{0.0}),
      supply_brownout_event(1, Voltage{12.0}, 2.0, 4.0),
      flaky_switch_event(kAllSurfaces, 0.1, 0.0, 3.0),
      codebook_corrupt_event(0, 1.0, 2.0),
      surface_offline_event(1, 6.0),
  };
  return plan;
}

TEST(FaultEvent, ActiveWindowIsHalfOpen) {
  const FaultEvent e = supply_brownout_event(0, Voltage{5.0}, 1.0, 2.0);
  EXPECT_FALSE(e.active_at(0.999));
  EXPECT_TRUE(e.active_at(1.0));
  EXPECT_TRUE(e.active_at(1.999));
  EXPECT_FALSE(e.active_at(2.0));
}

TEST(FaultEventFactories, ValidateTheirShapes) {
  // Factories run the same structural validation as (de)serialization, so
  // a malformed event fails with the format's typed error at build time.
  EXPECT_THROW((void)stuck_cells_event(0, 0.0, Voltage{0.0}, Voltage{0.0}),
               FaultPlanFormatError);
  EXPECT_THROW((void)stuck_cells_event(0, 1.5, Voltage{0.0}, Voltage{0.0}),
               FaultPlanFormatError);
  EXPECT_THROW((void)measurement_dropout_event(-0.1), FaultPlanFormatError);
  EXPECT_THROW((void)measurement_dropout_event(1.1), FaultPlanFormatError);
  EXPECT_THROW((void)supply_brownout_event(0, Voltage{-1.0}, 0.0, 1.0),
               FaultPlanFormatError);
  EXPECT_THROW((void)flaky_switch_event(0, 0.5, 2.0, 1.0),
               FaultPlanFormatError);
}

TEST(FaultPlanPersistence, RoundTripPreservesEveryField) {
  const FaultPlan plan = make_test_plan();
  const std::vector<std::uint8_t> bytes = plan.serialize();
  const FaultPlan reloaded = FaultPlan::deserialize(bytes);
  EXPECT_EQ(reloaded, plan);
  // Re-serialization is byte-identical (canonical encoding).
  EXPECT_EQ(reloaded.serialize(), bytes);
}

TEST(FaultPlanPersistence, EmptyPlanRoundTrips) {
  const FaultPlan plan;  // default seed, no events
  EXPECT_EQ(FaultPlan::deserialize(plan.serialize()), plan);
}

TEST(FaultPlanPersistence, EveryTruncationIsRejectedWithTypedError) {
  const std::vector<std::uint8_t> bytes = make_test_plan().serialize();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::span<const std::uint8_t> prefix{bytes.data(), len};
    EXPECT_THROW((void)FaultPlan::deserialize(prefix), FaultPlanFormatError)
        << "prefix of " << len << " bytes";
  }
}

TEST(FaultPlanPersistence, EverySingleBitFlipIsRejected) {
  const std::vector<std::uint8_t> bytes = make_test_plan().serialize();
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> corrupt = bytes;
      corrupt[pos] = static_cast<std::uint8_t>(corrupt[pos] ^ (1u << bit));
      EXPECT_THROW((void)FaultPlan::deserialize(corrupt),
                   FaultPlanFormatError)
          << "byte " << pos << " bit " << bit;
    }
  }
}

TEST(FaultPlanPersistence, TrailingGarbageIsRejected) {
  std::vector<std::uint8_t> bytes = make_test_plan().serialize();
  bytes.push_back(0x00);
  EXPECT_THROW((void)FaultPlan::deserialize(bytes), FaultPlanFormatError);
}

TEST(FaultPlanPersistence, FileRoundTripThroughDisk) {
  const FaultPlan plan = make_test_plan();
  const std::string path = ::testing::TempDir() + "llama_test.faultplan";
  plan.save(path);
  EXPECT_EQ(FaultPlan::load(path), plan);
  EXPECT_THROW((void)FaultPlan::load(path + ".missing"), std::runtime_error);
}

TEST(FaultPlanValidation, RejectsStructurallyInvalidPlans) {
  FaultPlan plan = make_test_plan();
  plan.events[0].probability = 1.5;
  EXPECT_THROW(validate(plan), FaultPlanFormatError);
  EXPECT_THROW((void)plan.serialize(), FaultPlanFormatError);

  plan = make_test_plan();
  plan.events[0].t_start_s = 5.0;
  plan.events[0].t_end_s = 1.0;  // end before start
  EXPECT_THROW(validate(plan), FaultPlanFormatError);

  plan = make_test_plan();
  plan.events[0].t_start_s = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(validate(plan), FaultPlanFormatError);

  plan = make_test_plan();
  plan.events[2].magnitude = 2.0;  // stuck fraction > 1
  EXPECT_THROW(validate(plan), FaultPlanFormatError);

  EXPECT_NO_THROW(validate(make_test_plan()));
}

}  // namespace
}  // namespace llama::fault
