#include "src/fault/health_monitor.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace llama::fault {
namespace {

using Evidence = HealthMonitor::TickEvidence;

constexpr Evidence kAllOut{/*devices=*/4, /*in_outage=*/4};
constexpr Evidence kAllGood{/*devices=*/4, /*in_outage=*/0};
constexpr Evidence kEmpty{};  // no devices: proves nothing

TEST(HealthMonitor, ValidatesItsParameters) {
  EXPECT_THROW(HealthMonitor{0}, std::invalid_argument);
  HealthMonitor::Options bad;
  bad.degrade_after = 0;
  EXPECT_THROW((HealthMonitor{1, bad}), std::invalid_argument);
  bad = {};
  bad.quarantine_after = bad.degrade_after;  // must be strictly beyond
  EXPECT_THROW((HealthMonitor{1, bad}), std::invalid_argument);
  bad = {};
  bad.readmit_after = 0;
  EXPECT_THROW((HealthMonitor{1, bad}), std::invalid_argument);
  bad = {};
  bad.probation_delay_s = -1.0;
  EXPECT_THROW((HealthMonitor{1, bad}), std::invalid_argument);
  EXPECT_THROW(HealthMonitor(1).observe(1, kAllGood, 0.0),
               std::out_of_range);
}

TEST(HealthMonitor, StartsHealthyAndServing) {
  const HealthMonitor monitor{3};
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(monitor.health(s), SurfaceHealth::kHealthy);
    EXPECT_TRUE(monitor.serving(s));
  }
  EXPECT_EQ(monitor.transition_count(), 0);
}

TEST(HealthMonitor, PartialOutageNeverDegrades) {
  HealthMonitor monitor{1};
  // 3-of-4 devices out for a long time: a struggling surface is not a dead
  // one — only unanimous outage is hardware-crash evidence.
  for (int i = 0; i < 50; ++i)
    monitor.observe(0, Evidence{4, 3}, 0.1 * i);
  EXPECT_EQ(monitor.health(0), SurfaceHealth::kHealthy);
}

TEST(HealthMonitor, UnanimousOutageWalksDegradedThenQuarantined) {
  HealthMonitor::Options opts;
  opts.degrade_after = 2;
  opts.quarantine_after = 5;
  HealthMonitor monitor{2, opts};
  double t = 0.0;
  monitor.observe(0, kAllOut, t += 0.1);
  EXPECT_EQ(monitor.health(0), SurfaceHealth::kHealthy);  // one tick: noise
  monitor.observe(0, kAllOut, t += 0.1);
  EXPECT_EQ(monitor.health(0), SurfaceHealth::kDegraded);
  EXPECT_TRUE(monitor.serving(0));  // degraded still serves
  monitor.observe(0, kAllOut, t += 0.1);
  monitor.observe(0, kAllOut, t += 0.1);
  EXPECT_EQ(monitor.health(0), SurfaceHealth::kDegraded);
  monitor.observe(0, kAllOut, t += 0.1);  // 5th consecutive bad tick
  EXPECT_EQ(monitor.health(0), SurfaceHealth::kQuarantined);
  EXPECT_FALSE(monitor.serving(0));
  // The other surface is untouched.
  EXPECT_EQ(monitor.health(1), SurfaceHealth::kHealthy);
  EXPECT_EQ(monitor.transition_count(), 2);
}

TEST(HealthMonitor, GoodTickRecoversADegradedSurface) {
  HealthMonitor monitor{1};
  monitor.observe(0, kAllOut, 0.0);
  monitor.observe(0, kAllOut, 0.1);
  ASSERT_EQ(monitor.health(0), SurfaceHealth::kDegraded);
  monitor.observe(0, kAllGood, 0.2);
  EXPECT_EQ(monitor.health(0), SurfaceHealth::kHealthy);
  // ... and the streak restarts from zero afterwards.
  monitor.observe(0, kAllOut, 0.3);
  EXPECT_EQ(monitor.health(0), SurfaceHealth::kHealthy);
}

TEST(HealthMonitor, EmptyEvidenceFreezesStreaksButAdvancesTime) {
  HealthMonitor::Options opts;
  opts.probation_delay_s = 1.0;
  HealthMonitor monitor{1, opts};
  double t = 0.0;
  for (int i = 0; i < opts.quarantine_after; ++i)
    monitor.observe(0, kAllOut, t += 0.1);
  ASSERT_EQ(monitor.health(0), SurfaceHealth::kQuarantined);
  // Evacuated surface: no devices, so only time passes. After the
  // probation delay it goes on trial.
  monitor.observe(0, kEmpty, t + 0.5);
  EXPECT_EQ(monitor.health(0), SurfaceHealth::kQuarantined);
  monitor.observe(0, kEmpty, t + 1.2);
  EXPECT_EQ(monitor.health(0), SurfaceHealth::kProbation);
  EXPECT_TRUE(monitor.serving(0));  // canary may be placed
}

TEST(HealthMonitor, CanaryWalksProbationToHealthyOrBackToQuarantine) {
  HealthMonitor::Options opts;
  opts.probation_delay_s = 1.0;
  opts.readmit_after = 3;
  HealthMonitor monitor{1, opts};
  double t = 0.0;
  for (int i = 0; i < opts.quarantine_after; ++i)
    monitor.observe(0, kAllOut, t += 0.1);
  monitor.observe(0, kEmpty, t += 1.5);
  ASSERT_EQ(monitor.health(0), SurfaceHealth::kProbation);

  // A bad canary tick re-quarantines immediately (fresh dwell).
  monitor.observe(0, Evidence{1, 1}, t += 0.1);
  EXPECT_EQ(monitor.health(0), SurfaceHealth::kQuarantined);
  // The dwell restarted: probation only after another full delay.
  monitor.observe(0, kEmpty, t + 0.5);
  EXPECT_EQ(monitor.health(0), SurfaceHealth::kQuarantined);
  monitor.observe(0, kEmpty, t += 1.5);
  ASSERT_EQ(monitor.health(0), SurfaceHealth::kProbation);

  // Clean canary streak readmits.
  monitor.observe(0, Evidence{1, 0}, t += 0.1);
  monitor.observe(0, Evidence{1, 0}, t += 0.1);
  EXPECT_EQ(monitor.health(0), SurfaceHealth::kProbation);
  monitor.observe(0, Evidence{1, 0}, t += 0.1);
  EXPECT_EQ(monitor.health(0), SurfaceHealth::kHealthy);
  EXPECT_TRUE(monitor.serving(0));
}

}  // namespace
}  // namespace llama::fault
