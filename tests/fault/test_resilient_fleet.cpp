// End-to-end degraded-mode serving: the fault drill (measurement dropouts,
// a stuck bias cell, one surface crashing at the midpoint) run through the
// ResilientPolicy + HealthMonitor stack inside FleetTracker. Mirrors the
// bench_fault_resilience CI gate at test scale.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "src/codebook/compiler.h"
#include "src/core/scenarios.h"
#include "src/fault/resilient_policy.h"
#include "src/track/fleet_tracker.h"

namespace llama::fault {
namespace {

codebook::Codebook drill_codebook(const core::FaultDrillScenario& scenario) {
  return codebook::CodebookCompiler{core::device_system_config(
                                        scenario.config.deployment,
                                        common::Angle::degrees(0.0))}
      .compile();
}

TEST(ResilientPolicy, ValidatesOptionsAndBindOrder) {
  const core::FaultDrillScenario scenario = core::fault_drill_scenario(2, 2);
  const codebook::Codebook book = drill_codebook(scenario);

  ResilientPolicy::Options bad;
  bad.period_s = 0.0;
  EXPECT_THROW((ResilientPolicy{book, bad}), std::invalid_argument);
  bad = {};
  bad.escalate_after = 0;
  EXPECT_THROW((ResilientPolicy{book, bad}), std::invalid_argument);
  bad = {};
  bad.direct_holdoff_s = -1.0;
  EXPECT_THROW((ResilientPolicy{book, bad}), std::invalid_argument);

  ResilientPolicy policy{book};
  core::LlamaSystem system{core::device_system_config(
      scenario.config.deployment, common::Angle::degrees(80.0))};
  track::TickObservation obs;
  EXPECT_THROW((void)policy.on_tick(system, obs), std::logic_error);
}

TEST(FleetTracker, RejectsFaultsCombinedWithLeakage) {
  core::FaultDrillScenario scenario = core::fault_drill_scenario(2, 2);
  scenario.config.deployment.interference.enable_leakage = true;
  EXPECT_THROW((track::FleetTracker{scenario.config}), std::invalid_argument);
}

TEST(FleetTracker, RejectsInvalidFaultPlansAtConstruction) {
  core::FaultDrillScenario scenario = core::fault_drill_scenario(2, 2);
  auto broken = std::make_shared<FaultPlan>(*scenario.plan);
  broken->events[0].probability = 5.0;
  scenario.config.faults = broken;
  EXPECT_THROW((track::FleetTracker{scenario.config}), FaultPlanFormatError);
}

TEST(FaultDrill, ResilientFleetKeepsServingWhereBaselineGoesDark) {
  const core::FaultDrillScenario scenario = core::fault_drill_scenario(8, 2);
  const codebook::Codebook book = drill_codebook(scenario);
  track::FleetTracker tracker{scenario.config};

  track::PeriodicCodebook::Options periodic_opts;
  periodic_opts.period_s = 0.5;
  periodic_opts.lookup.enable_fine_sweep = false;
  periodic_opts.lookup.threads = 1;
  const track::FleetReport baseline = tracker.run(
      scenario.devices,
      [&] {
        return std::make_unique<track::PeriodicCodebook>(book, periodic_opts);
      },
      scenario.ticks);

  ResilientPolicy::Options resilient_opts;
  resilient_opts.lookup.threads = 1;
  const track::FleetReport resilient = tracker.run(
      scenario.devices,
      [&] { return std::make_unique<ResilientPolicy>(book, resilient_opts); },
      scenario.ticks);

  // The CI gate's acceptance pins, at the same scenario scale.
  EXPECT_LE(resilient.mean_outage_fraction, 0.10);
  EXPECT_GE(baseline.mean_outage_fraction,
            3.0 * resilient.mean_outage_fraction);

  // The crashed surface was caught and quarantined...
  ASSERT_EQ(resilient.surface_health.size(), 2u);
  EXPECT_EQ(resilient.surface_health[1], SurfaceHealth::kQuarantined);
  EXPECT_GT(resilient.health_transitions, 0);
  // ...and its devices were evacuated onto the healthy surface.
  EXPECT_GT(resilient.reassignments, 0);
  for (const track::DeviceTrackResult& d : resilient.devices)
    if (d.home_surface == 1) EXPECT_EQ(d.surface, 0u);

  // The dropout schedule actually fired, and the loop accounted for it.
  EXPECT_GT(resilient.dropped_measurements, 0);

  // The health machinery is policy-agnostic (it lives in FleetTracker), so
  // the baseline fleet also evacuates the crashed surface — its 3x-worse
  // outage is the policy layer's doing: no fade trigger, no deviation
  // ladder, no retry absorption.
  EXPECT_GT(baseline.reassignments, 0);
}

TEST(FaultDrill, FaultedFleetIsByteIdenticalForAnyThreadCount) {
  const core::FaultDrillScenario scenario = core::fault_drill_scenario(6, 2);
  const codebook::Codebook book = drill_codebook(scenario);
  ResilientPolicy::Options opts;
  opts.lookup.threads = 1;
  const track::PolicyFactory factory = [&] {
    return std::make_unique<ResilientPolicy>(book, opts);
  };

  track::FleetConfig serial = scenario.config;
  serial.deployment.threads = 1;
  track::FleetConfig parallel = scenario.config;
  parallel.deployment.threads = 4;
  const track::FleetReport a =
      track::FleetTracker{serial}.run(scenario.devices, factory,
                                      scenario.ticks);
  const track::FleetReport b =
      track::FleetTracker{parallel}.run(scenario.devices, factory,
                                        scenario.ticks);

  ASSERT_EQ(a.devices.size(), b.devices.size());
  for (std::size_t i = 0; i < a.devices.size(); ++i) {
    EXPECT_EQ(a.devices[i].surface, b.devices[i].surface);
    EXPECT_EQ(a.devices[i].report.outage_fraction,
              b.devices[i].report.outage_fraction);
    EXPECT_EQ(a.devices[i].report.mean_power_dbm,
              b.devices[i].report.mean_power_dbm);
    EXPECT_EQ(a.devices[i].report.retune_airtime_s,
              b.devices[i].report.retune_airtime_s);
    EXPECT_EQ(a.devices[i].report.dropped_measurements,
              b.devices[i].report.dropped_measurements);
  }
  EXPECT_EQ(a.mean_outage_fraction, b.mean_outage_fraction);
  EXPECT_EQ(a.reassignments, b.reassignments);
  EXPECT_EQ(a.health_transitions, b.health_transitions);
  EXPECT_EQ(a.surface_health, b.surface_health);
}

TEST(FaultDrill, DrillScenarioPlanRoundTripsAndValidates) {
  const core::FaultDrillScenario scenario = core::fault_drill_scenario(4, 2);
  ASSERT_TRUE(scenario.plan);
  EXPECT_NO_THROW(validate(*scenario.plan));
  EXPECT_EQ(FaultPlan::deserialize(scenario.plan->serialize()),
            *scenario.plan);
  EXPECT_EQ(scenario.config.faults.get(), scenario.plan.get());
  EXPECT_THROW((void)core::fault_drill_scenario(4, 2, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace llama::fault
