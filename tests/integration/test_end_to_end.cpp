// Integration tests: full-system behaviours that span multiple modules and
// correspond to the paper's headline claims.
#include <gtest/gtest.h>

#include <cmath>

#include "src/channel/propagation.h"
#include "src/common/math_utils.h"
#include "src/core/scenarios.h"
#include "src/radio/devices.h"

namespace llama::core {
namespace {

using common::PowerDbm;
using common::Voltage;

TEST(EndToEnd, TransmissiveGainHoldsAcrossPaperDistances) {
  // Fig. 16: at every Tx-Rx distance from 24 to 60 cm, the optimized
  // surface recovers >= ~8 dB on the mismatched link.
  for (double cm = 24.0; cm <= 60.0; cm += 12.0) {
    LlamaSystem sys{transmissive_mismatch_config(cm / 100.0)};
    (void)sys.optimize_link();
    EXPECT_GT(sys.improvement().value(), 8.0) << "distance " << cm << " cm";
  }
}

TEST(EndToEnd, GainHoldsAcrossIsmBand) {
  // Fig. 17: > 10 dB of enhancement claimed across 2.4-2.5 GHz; we assert
  // a conservative > 6 dB at the checked frequencies.
  for (double ghz : {2.40, 2.44, 2.48}) {
    SystemConfig cfg = transmissive_mismatch_config();
    cfg.frequency = common::Frequency::ghz(ghz);
    LlamaSystem sys{cfg};
    (void)sys.optimize_link();
    EXPECT_GT(sys.improvement().value(), 6.0) << ghz << " GHz";
  }
}

TEST(EndToEnd, RangeExtensionImpliedByGain) {
  // Paper Section 5.1.1: the measured gain implies a multiplicative Friis
  // range extension (5.6x at 15 dB).
  LlamaSystem sys{transmissive_mismatch_config()};
  (void)sys.optimize_link();
  const double ext =
      channel::friis_range_extension(sys.improvement());
  EXPECT_GT(ext, 2.5);
}

TEST(EndToEnd, ReflectiveModeImprovesSameSideLink) {
  LlamaSystem sys{reflective_mismatch_config(0.42)};
  (void)sys.optimize_link();
  EXPECT_GT(sys.improvement().value(), 10.0);
}

TEST(EndToEnd, ReflectiveVoltageContrastSmallerThanTransmissive) {
  // Paper Section 5.2.1 (Figs. 15 vs 21).
  auto spread = [](LlamaSystem& sys) {
    double lo = 1e9;
    double hi = -1e9;
    auto probe = sys.make_probe(0.05);
    for (double v = 0.0; v <= 30.0; v += 6.0)
      for (double w = 0.0; w <= 30.0; w += 6.0) {
        const double p = probe(Voltage{v}, Voltage{w}).value();
        lo = std::min(lo, p);
        hi = std::max(hi, p);
      }
    return hi - lo;
  };
  LlamaSystem trans{transmissive_mismatch_config()};
  LlamaSystem refl{reflective_mismatch_config(0.42)};
  EXPECT_GT(spread(trans), spread(refl));
}

TEST(EndToEnd, IotLinkDistributionShiftsByTenDb) {
  // Fig. 20: the ESP8266 <-> AP link's RSSI distribution shifts ~10 dB when
  // the optimized surface corrects the mismatch.
  SystemConfig cfg = transmissive_mismatch_config(1.0, PowerDbm{14.0});
  cfg.tx_antenna = channel::Antenna::iot_dipole(common::Angle::degrees(0.0));
  cfg.rx_antenna = channel::Antenna::iot_dipole(common::Angle::degrees(90.0));
  LlamaSystem sys{cfg};
  (void)sys.optimize_link();
  radio::RssiReporter reporter{radio::DeviceProfile::esp8266(),
                               common::Rng{5}};
  const auto with =
      reporter.collect(sys.measure_with_surface(0.1), 500);
  const auto without =
      reporter.collect(sys.measure_without_surface(), 500);
  const double shift = common::mean(with) - common::mean(without);
  EXPECT_GT(shift, 4.0);
  EXPECT_LT(shift, 18.0);
}

TEST(EndToEnd, MultipathOmniLowPowerCanBackfire) {
  // Fig. 19a: with omni antennas in a rich-multipath lab at very low
  // transmit power (0.002 mW), bursty ambient interference corrupts the
  // controller's probe comparisons and the surface's benefit collapses —
  // the capacity delta turns negative or negligible, while at high power
  // the clean-room gain returns.
  auto capacity_delta = [](double tx_dbm) {
    common::Rng env_rng{42};
    SystemConfig cfg = transmissive_mismatch_config(0.42, PowerDbm{tx_dbm});
    cfg.tx_antenna = channel::Antenna::omni_6dbi(common::Angle::degrees(0.0));
    cfg.rx_antenna =
        channel::Antenna::omni_6dbi(common::Angle::degrees(90.0));
    cfg.environment = channel::Environment::laboratory(env_rng);
    LlamaSystem sys{cfg};
    (void)sys.optimize_link();
    return sys.capacity_with_surface() - sys.capacity_without_surface();
  };
  const double low_delta = capacity_delta(-27.0);   // 0.002 mW
  const double high_delta = capacity_delta(20.0);   // 100 mW
  EXPECT_GT(high_delta, low_delta);
  EXPECT_LT(low_delta, 0.3);
  EXPECT_GT(high_delta, 0.3);
}

TEST(EndToEnd, DirectionalAntennasResistMultipath) {
  // Fig. 19b: with directional antennas the benefit survives the lab.
  common::Rng env_rng{42};
  SystemConfig cfg = transmissive_mismatch_config(0.42, PowerDbm{3.0});
  cfg.environment = channel::Environment::laboratory(env_rng);
  LlamaSystem sys{cfg};
  (void)sys.optimize_link();
  EXPECT_GT(sys.improvement().value(), 5.0);
}

TEST(EndToEnd, SurfaceDcBudgetIsNegligible) {
  // Paper Section 3.3: 15 nA of leakage at 30 V biases — nanowatts,
  // irrelevant next to any radio.
  LlamaSystem sys{transmissive_mismatch_config()};
  (void)sys.optimize_link();
  EXPECT_LT(sys.surface().dc_power_w(), 1e-6);
}

TEST(EndToEnd, OptimizationIsDeterministicPerSeed) {
  LlamaSystem a{transmissive_mismatch_config()};
  LlamaSystem b{transmissive_mismatch_config()};
  const auto ra = a.optimize_link();
  const auto rb = b.optimize_link();
  EXPECT_DOUBLE_EQ(ra.sweep.best_vx.value(), rb.sweep.best_vx.value());
  EXPECT_DOUBLE_EQ(ra.sweep.best_power.value(), rb.sweep.best_power.value());
}

}  // namespace
}  // namespace llama::core
