// Integration tests for the extension features: 900 MHz scaling, wearable
// tracking under mobility, dense-deployment scheduling, and cross-detector
// agreement on the real respiration scenario.
#include <gtest/gtest.h>

#include <cmath>

#include "src/channel/ber.h"
#include "src/channel/mobility.h"
#include "src/control/scheduler.h"
#include "src/core/scenarios.h"
#include "src/metasurface/designs.h"
#include "src/sensing/spectral.h"

namespace llama::core {
namespace {

using common::PowerDbm;
using common::Voltage;

TEST(Extensions, Rfid900DesignIsCenteredAt915) {
  const metasurface::RotatorStack stack = metasurface::rfid_900mhz_design();
  const Voltage v{5.0};
  const double at_915 = stack.transmission_efficiency_db(
      common::Frequency::mhz(915.0), v, v, false);
  const double at_750 = stack.transmission_efficiency_db(
      common::Frequency::mhz(750.0), v, v, false);
  const double at_1080 = stack.transmission_efficiency_db(
      common::Frequency::mhz(1080.0), v, v, false);
  EXPECT_GT(at_915, -5.0);  // "comparable performance" to the 2.4 GHz -4.4
  EXPECT_GT(at_915, at_750 + 1.0);
  EXPECT_GT(at_915, at_1080 + 0.5);
}

TEST(Extensions, Rfid900RotationRangeComparable) {
  const metasurface::RotatorStack stack = metasurface::rfid_900mhz_design();
  const auto f0 = common::Frequency::mhz(915.0);
  const double corner = std::abs(
      stack.rotation_angle(f0, Voltage{2.0}, Voltage{15.0}).deg());
  const double diag =
      std::abs(stack.rotation_angle(f0, Voltage{5.0}, Voltage{5.0}).deg());
  EXPECT_GT(corner, 35.0);
  EXPECT_LT(diag, 12.0);
}

TEST(Extensions, TrackingFollowsArmSwing) {
  // A wearable swings between well-matched and badly-mismatched postures;
  // a tracked surface must end the swing cycle no worse than a frozen one
  // and must actually fire re-sweeps.
  SystemConfig cfg = transmissive_mismatch_config(1.5, PowerDbm{0.0});
  cfg.tx_antenna = channel::Antenna::iot_dipole(common::Angle::degrees(0.0));
  cfg.rx_antenna = channel::Antenna::iot_dipole(common::Angle::degrees(45.0));

  channel::ArmSwing::Params swing;
  swing.mean = common::Angle::degrees(45.0);
  swing.amplitude = common::Angle::degrees(40.0);
  swing.swing_rate_hz = 0.15;
  channel::ArmSwing arm{swing};

  LlamaSystem tracked{cfg};
  LlamaSystem frozen{cfg};
  control::Controller tracker{tracked.surface(), tracked.supply()};
  (void)frozen.optimize_link();

  int resweeps = 0;
  double tracked_min_dbm = 1e9;
  double frozen_min_dbm = 1e9;
  for (double t = 0.0; t <= 20.0; t += 0.5) {
    const common::Angle o = arm.orientation_at(t);
    tracked.link().set_rx_antenna(channel::Antenna::iot_dipole(o));
    frozen.link().set_rx_antenna(channel::Antenna::iot_dipole(o));
    const auto report = tracked.measure_with_surface(0.02);
    if (tracker.on_power_report(report, tracked.make_probe()).has_value())
      ++resweeps;
    tracked_min_dbm = std::min(
        tracked_min_dbm, tracked.measure_with_surface(0.02).value());
    frozen_min_dbm =
        std::min(frozen_min_dbm, frozen.measure_with_surface(0.02).value());
  }
  EXPECT_GT(resweeps, 0);
  // Tracking's payoff is the worst case: it lifts the deep-mismatch fades
  // the frozen surface cannot follow. (On a symmetric swing the frozen
  // surface, optimized at the mean posture, can match or beat the tracker
  // on AVERAGE — worst-case is the right metric.)
  EXPECT_GE(tracked_min_dbm, frozen_min_dbm - 0.5);
}

TEST(Extensions, SchedulerServesIncompatibleOrientations) {
  // Two devices with near-orthogonal mountings need different bias states;
  // the schedule must give each a slot, and each device's expected power
  // must beat its unassisted baseline.
  std::vector<control::DeviceEntry> devices;
  for (double deg : {85.0, 15.0}) {
    SystemConfig cfg = transmissive_mismatch_config(1.0, PowerDbm{14.0});
    cfg.tx_antenna =
        channel::Antenna::iot_dipole(common::Angle::degrees(0.0));
    cfg.rx_antenna =
        channel::Antenna::iot_dipole(common::Angle::degrees(deg));
    cfg.seed += static_cast<std::uint64_t>(deg);
    LlamaSystem sys{cfg};
    const auto report = sys.optimize_link();
    devices.push_back(control::DeviceEntry{
        "d" + std::to_string(static_cast<int>(deg)), report.sweep.best_vx,
        report.sweep.best_vy, sys.measure_with_surface(0.1),
        sys.measure_without_surface(), 1.0});
  }
  control::PolarizationScheduler scheduler;
  const auto slots = scheduler.build_schedule(devices);
  EXPECT_GE(slots.size(), 2u);
  const auto powers = scheduler.expected_power(devices, slots);
  // The badly mismatched device (85 deg) must clearly benefit.
  EXPECT_GT(powers[0].value(), devices[0].unoptimized_power.value() + 1.0);
}

TEST(Extensions, SpectralAndAutocorrAgreeOnRespiration) {
  const SensingScenario scenario = respiration_scenario();
  const auto trace =
      simulate_respiration_trace(scenario, /*with_surface=*/true, 60.0, 10.0);
  sensing::RespirationDetector autocorr;
  sensing::SpectralRespirationAnalyzer spectral;
  const auto a = autocorr.analyze(trace, 10.0);
  const auto s = spectral.analyze(trace, 10.0);
  EXPECT_TRUE(a.detected);
  EXPECT_TRUE(s.detected);
  EXPECT_NEAR(a.rate_hz, s.peak_frequency_hz, 0.05);
  EXPECT_NEAR(s.peak_frequency_hz, scenario.breathing.rate_hz, 0.03);
}

TEST(Extensions, ThroughputModelReflectsPolarizationRecovery) {
  // End-to-end: the Wi-Fi rate ladder converts the link-power gain into a
  // rate-class jump at busy-building noise levels.
  SystemConfig cfg = transmissive_mismatch_config(1.0, PowerDbm{14.0});
  cfg.tx_antenna = channel::Antenna::iot_dipole(common::Angle::degrees(0.0));
  cfg.rx_antenna = channel::Antenna::iot_dipole(common::Angle::degrees(90.0));
  LlamaSystem sys{cfg};
  (void)sys.optimize_link();
  const auto wifi = channel::LinkLayerModel::wifi_80211g();
  const PowerDbm noise{-55.0};
  const double t_without =
      wifi.throughput_mbps(sys.measure_without_surface() - noise);
  const double t_with =
      wifi.throughput_mbps(sys.measure_with_surface(0.1) - noise);
  EXPECT_GT(t_with, t_without + 5.0);
}

}  // namespace
}  // namespace llama::core
