// Randomized golden-equivalence suite for the SoA kernel layer.
//
// The scalar planned path (RotatorStack::transmission/reflection over a
// plan) is the golden reference; the kernels may reassociate, so the
// contract is <= 1e-12 per-component agreement — NOT bit-equality. The
// byte-identical invariant is separate and WITHIN the kernel path: one grid
// must memcmp-equal itself for any thread count. Each test below says which
// of the two properties it asserts.
#include <gtest/gtest.h>

#include <cstring>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/em/jones.h"
#include "src/metasurface/designs.h"
#include "src/metasurface/metasurface.h"

namespace llama::kernel {
namespace {

using common::Frequency;
using common::Rng;
using common::Voltage;
using em::JonesMatrix;
using metasurface::BiasList;
using metasurface::JonesGrid;
using metasurface::Metasurface;
using metasurface::RotatorStack;
using metasurface::SurfaceMode;

/// The SoA <-> scalar agreement bound (see jones_kernels.h).
constexpr double kTol = 1e-12;

struct NamedDesign {
  const char* name;
  RotatorStack stack;
  double center_ghz;  ///< design band center, the region worth probing
};

std::vector<NamedDesign> all_designs() {
  std::vector<NamedDesign> designs;
  designs.push_back({"reference_rogers", metasurface::reference_rogers_design(), 2.44});
  designs.push_back({"naive_fr4", metasurface::naive_fr4_design(), 2.44});
  designs.push_back({"optimized_fr4", metasurface::optimized_fr4_design(), 2.44});
  designs.push_back({"prototype_fr4", metasurface::prototype_fr4_design(), 2.44});
  designs.push_back({"rfid_900mhz", metasurface::rfid_900mhz_design(), 0.915});
  return designs;
}

double max_component_diff(const JonesMatrix& a, const JonesMatrix& b) {
  double worst = 0.0;
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < 2; ++c) {
      worst = std::max(worst, std::abs(a.at(r, c).real() - b.at(r, c).real()));
      worst = std::max(worst, std::abs(a.at(r, c).imag() - b.at(r, c).imag()));
    }
  return worst;
}

std::vector<double> random_axis(Rng& rng, std::size_t n) {
  std::vector<double> axis(n);
  // Beyond-supply values check that the kernel path clamps like set_bias.
  for (double& v : axis) v = rng.uniform(-2.0, 33.0);
  return axis;
}

/// Scalar golden reference for one cell: pointwise response() at the
/// (already raw, to-be-clamped) bias pair, via the planned scalar path.
JonesMatrix scalar_cell(const Metasurface& surface, Frequency f,
                        SurfaceMode mode, double vx, double vy) {
  Metasurface probe = surface;  // fresh copy: keep the original's state pure
  probe.set_bias(Voltage{vx}, Voltage{vy});
  return probe.response(f, mode);
}

/// Property 1 (equivalence bound): random grids on every design, both
/// modes, random frequencies near each design's band — every cell agrees
/// with the pointwise scalar response to <= 1e-12 per component.
TEST(GoldenEquivalence, RandomGridsMatchScalarWithinTolerance) {
  Rng rng{0xC0FFEE01};
  for (NamedDesign& d : all_designs()) {
    Metasurface surface{std::move(d.stack)};
    for (const SurfaceMode mode :
         {SurfaceMode::kTransmissive, SurfaceMode::kReflective}) {
      const Frequency f =
          Frequency::ghz(d.center_ghz * rng.uniform(0.9, 1.1));
      const std::vector<double> vxs = random_axis(rng, 7);
      const std::vector<double> vys = random_axis(rng, 5);
      const JonesGrid grid = surface.response_grid(f, mode, vxs, vys);
      double worst = 0.0;
      for (std::size_t iy = 0; iy < vys.size(); ++iy)
        for (std::size_t ix = 0; ix < vxs.size(); ++ix)
          worst = std::max(
              worst, max_component_diff(grid[iy][ix],
                                        scalar_cell(surface, f, mode,
                                                    vxs[ix], vys[iy])));
      EXPECT_LE(worst, kTol)
          << d.name << " mode=" << static_cast<int>(mode)
          << " f=" << f.in_ghz() << " GHz";
    }
  }
}

/// Property 1 for response_batch: arbitrary bias pairs, both modes.
TEST(GoldenEquivalence, RandomBatchesMatchScalarWithinTolerance) {
  Rng rng{0xC0FFEE02};
  for (NamedDesign& d : all_designs()) {
    Metasurface surface{std::move(d.stack)};
    for (const SurfaceMode mode :
         {SurfaceMode::kTransmissive, SurfaceMode::kReflective}) {
      const Frequency f =
          Frequency::ghz(d.center_ghz * rng.uniform(0.95, 1.05));
      BiasList points;
      for (int i = 0; i < 23; ++i)
        points.emplace_back(Voltage{rng.uniform(-2.0, 33.0)},
                            Voltage{rng.uniform(-2.0, 33.0)});
      const std::vector<JonesMatrix> batch =
          surface.response_batch(f, mode, points);
      ASSERT_EQ(batch.size(), points.size());
      for (std::size_t i = 0; i < points.size(); ++i) {
        const JonesMatrix golden =
            scalar_cell(surface, f, mode, points[i].first.value(),
                        points[i].second.value());
        EXPECT_LE(max_component_diff(batch[i], golden), kTol)
            << d.name << " point " << i;
      }
    }
  }
}

/// Property 1 under degraded planes: a stuck-cell fault blends in lane
/// space inside the kernels; pointwise response() blends after the scalar
/// path. Both must land within the same 1e-12 bound.
TEST(GoldenEquivalence, StuckCellPlanesMatchScalarWithinTolerance) {
  Rng rng{0xC0FFEE03};
  for (NamedDesign& d : all_designs()) {
    Metasurface surface{std::move(d.stack)};
    metasurface::StuckCellFault fault;
    fault.fraction = rng.uniform(0.05, 0.6);
    fault.vx = Voltage{rng.uniform(0.0, 30.0)};
    fault.vy = Voltage{rng.uniform(0.0, 30.0)};
    surface.set_stuck_cells(fault);
    for (const SurfaceMode mode :
         {SurfaceMode::kTransmissive, SurfaceMode::kReflective}) {
      const Frequency f =
          Frequency::ghz(d.center_ghz * rng.uniform(0.95, 1.05));
      const std::vector<double> vxs = random_axis(rng, 6);
      const std::vector<double> vys = random_axis(rng, 4);
      const JonesGrid grid = surface.response_grid(f, mode, vxs, vys);
      for (std::size_t iy = 0; iy < vys.size(); ++iy)
        for (std::size_t ix = 0; ix < vxs.size(); ++ix) {
          const JonesMatrix golden =
              scalar_cell(surface, f, mode, vxs[ix], vys[iy]);
          EXPECT_LE(max_component_diff(grid[iy][ix], golden), kTol)
              << d.name << " degraded cell (" << ix << ", " << iy << ")";
        }
    }
  }
}

/// Property 2 (byte-identical invariant): the kernel grid path must produce
/// memcmp-equal planes for 1, 2 and 8 workers — same design set, both
/// modes, with and without a degraded plane. This is bit-equality WITHIN
/// the kernel path, orthogonal to the 1e-12 bound against the scalar path.
TEST(GoldenEquivalence, ThreadCountDoesNotChangeGridBytes) {
  Rng rng{0xC0FFEE04};
  for (NamedDesign& d : all_designs()) {
    Metasurface surface{std::move(d.stack)};
    for (const bool degraded : {false, true}) {
      if (degraded)
        surface.set_stuck_cells(metasurface::StuckCellFault{
            0.25, Voltage{rng.uniform(0.0, 30.0)},
            Voltage{rng.uniform(0.0, 30.0)}});
      for (const SurfaceMode mode :
           {SurfaceMode::kTransmissive, SurfaceMode::kReflective}) {
        const Frequency f = Frequency::ghz(d.center_ghz);
        const std::vector<double> vxs = random_axis(rng, 9);
        const std::vector<double> vys = random_axis(rng, 11);
        const JonesGrid baseline =
            surface.response_grid(f, mode, vxs, vys, /*threads=*/1);
        for (const int threads : {2, 8}) {
          const JonesGrid other =
              surface.response_grid(f, mode, vxs, vys, threads);
          ASSERT_EQ(other.size(), baseline.size());
          for (std::size_t iy = 0; iy < baseline.size(); ++iy) {
            ASSERT_EQ(other[iy].size(), baseline[iy].size());
            EXPECT_EQ(std::memcmp(other[iy].data(), baseline[iy].data(),
                                  baseline[iy].size() * sizeof(JonesMatrix)),
                      0)
                << d.name << " row " << iy << " with " << threads
                << " workers (degraded=" << degraded << ")";
          }
        }
      }
    }
  }
}

/// Property 2 for response_batch: the fixed pair-chunk decomposition must
/// make batches byte-identical for any worker count.
TEST(GoldenEquivalence, ThreadCountDoesNotChangeBatchBytes) {
  Rng rng{0xC0FFEE05};
  Metasurface surface{metasurface::optimized_fr4_design()};
  BiasList points;
  for (int i = 0; i < 700; ++i)  // spans multiple 256-pair chunks
    points.emplace_back(Voltage{rng.uniform(0.0, 30.0)},
                        Voltage{rng.uniform(0.0, 30.0)});
  const Frequency f = Frequency::ghz(2.44);
  for (const SurfaceMode mode :
       {SurfaceMode::kTransmissive, SurfaceMode::kReflective}) {
    const std::vector<JonesMatrix> baseline =
        surface.response_batch(f, mode, points, /*threads=*/1);
    for (const int threads : {2, 8}) {
      const std::vector<JonesMatrix> other =
          surface.response_batch(f, mode, points, threads);
      ASSERT_EQ(other.size(), baseline.size());
      EXPECT_EQ(std::memcmp(other.data(), baseline.data(),
                            baseline.size() * sizeof(JonesMatrix)),
                0)
          << "mode=" << static_cast<int>(mode) << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace llama::kernel
