#include "src/metasurface/board.h"

#include <gtest/gtest.h>

#include <cmath>

namespace llama::metasurface {
namespace {

using common::Frequency;
using common::Voltage;
using microwave::Substrate;
using microwave::Varactor;

const Frequency kF0 = Frequency::ghz(2.44);

FacePattern fixed_tank() {
  FacePattern f;
  f.inductance_h = 4.0e-9;
  f.capacitance_f = 1.0e-12;
  f.r_inductor_ohm = 0.2;
  return f;
}

FacePattern tunable_tank() {
  FacePattern f;
  f.inductance_h = 5.46e-9;
  f.capacitance_f = 1.7e-12;
  f.varactor_loaded = true;
  f.r_inductor_ohm = 0.2;
  return f;
}

Board make_board(const Substrate& substrate) {
  return Board{"test", substrate, 0.8e-3,
               AxisPatterns{.front = tunable_tank(), .back = {}},
               AxisPatterns{.front = tunable_tank(), .back = {}}};
}

TEST(FacePattern, EmptyPatternHasZeroAdmittance) {
  const FacePattern empty;
  EXPECT_TRUE(empty.empty());
  const auto y = empty.admittance(kF0, Voltage{5.0}, Varactor::smv1233(),
                                  0.02);
  EXPECT_DOUBLE_EQ(std::abs(y), 0.0);
}

TEST(FacePattern, TankSusceptanceChangesSignThroughResonance) {
  FacePattern f = fixed_tank();
  const Varactor v = Varactor::smv1233();
  // Below tank resonance the inductive branch dominates (B < 0); far above
  // it the capacitive branch dominates (B > 0).
  const double b_low =
      f.admittance(Frequency::ghz(1.0), Voltage{0.0}, v, 0.0).imag();
  const double b_high =
      f.admittance(Frequency::ghz(6.0), Voltage{0.0}, v, 0.0).imag();
  EXPECT_LT(b_low, 0.0);
  EXPECT_GT(b_high, 0.0);
}

TEST(FacePattern, LossTangentAddsConductance) {
  FacePattern f = fixed_tank();
  const Varactor v = Varactor::smv1233();
  const double g_clean = f.admittance(kF0, Voltage{0.0}, v, 0.0).real();
  const double g_lossy = f.admittance(kF0, Voltage{0.0}, v, 0.02).real();
  EXPECT_GT(g_lossy, g_clean);
}

TEST(FacePattern, VaractorBiasMovesSusceptance) {
  FacePattern f = tunable_tank();
  const Varactor v = Varactor::smv1233();
  const double b2 = f.admittance(kF0, Voltage{2.0}, v, 0.02).imag();
  const double b15 = f.admittance(kF0, Voltage{15.0}, v, 0.02).imag();
  EXPECT_GT(b2, b15);  // more capacitance at low bias
  EXPECT_GT(std::abs(b2 - b15), 1e-3);  // a few mS of swing
}

TEST(Board, TransmissionIsPassiveEverywhere) {
  const Board b = make_board(Substrate::fr4());
  for (double ghz = 2.0; ghz <= 2.8; ghz += 0.2)
    for (double bias = 0.0; bias <= 30.0; bias += 6.0) {
      const auto s =
          b.axis_sparams(Frequency::ghz(ghz), Voltage{bias}, false);
      EXPECT_TRUE(s.is_passive(1e-6)) << ghz << " GHz, " << bias << " V";
      EXPECT_TRUE(s.is_reciprocal(1e-7));
    }
}

TEST(Board, BiasShiftsTransmissionPhase) {
  const Board b = make_board(Substrate::fr4());
  const double p2 =
      std::arg(b.axis_transmission(kF0, Voltage{2.0}, false));
  const double p15 =
      std::arg(b.axis_transmission(kF0, Voltage{15.0}, false));
  EXPECT_GT(std::abs(p15 - p2), 0.3);  // tens of degrees of swing
}

TEST(Board, RogersTransmitsMoreThanFr4) {
  const Board fr4 = make_board(Substrate::fr4());
  const Board rogers = make_board(Substrate::rogers5880());
  const double t_fr4 =
      std::abs(fr4.axis_transmission(kF0, Voltage{8.0}, false));
  const double t_rog =
      std::abs(rogers.axis_transmission(kF0, Voltage{8.0}, false));
  EXPECT_GT(t_rog, t_fr4);
}

TEST(Board, ReflectionAndTransmissionShareEnergyBudget) {
  const Board b = make_board(Substrate::fr4());
  const double t = std::norm(b.axis_transmission(kF0, Voltage{5.0}, false));
  const double r = std::norm(b.axis_reflection(kF0, Voltage{5.0}, false));
  EXPECT_LE(t + r, 1.0 + 1e-6);
  EXPECT_GT(t + r, 0.3);  // not everything dissipates in a thin board
}

TEST(Board, JonesTransmissionIsDiagonalInEigenbasis) {
  const Board b = make_board(Substrate::fr4());
  const auto j = b.jones_transmission(kF0, Voltage{4.0}, Voltage{9.0});
  EXPECT_DOUBLE_EQ(std::abs(j.at(0, 1)), 0.0);
  EXPECT_DOUBLE_EQ(std::abs(j.at(1, 0)), 0.0);
  EXPECT_GT(std::abs(j.at(0, 0)), 0.1);
}

TEST(Board, IndependentAxisBiases) {
  const Board b = make_board(Substrate::fr4());
  const auto j1 = b.jones_transmission(kF0, Voltage{2.0}, Voltage{15.0});
  const auto j2 = b.jones_transmission(kF0, Voltage{2.0}, Voltage{2.0});
  // Same X bias -> same (0,0); different Y bias -> different (1,1).
  EXPECT_NEAR(std::abs(j1.at(0, 0) - j2.at(0, 0)), 0.0, 1e-12);
  EXPECT_GT(std::abs(j1.at(1, 1) - j2.at(1, 1)), 1e-3);
}

TEST(Board, RejectsNonPositiveThickness) {
  EXPECT_THROW(Board("bad", Substrate::fr4(), 0.0, AxisPatterns{},
                     AxisPatterns{}),
               std::invalid_argument);
}

TEST(Board, DeratedVaractorNeedsMoreBias) {
  const Board ideal = make_board(Substrate::fr4());
  const Board derated{"derated", Substrate::fr4(), 0.8e-3,
                      AxisPatterns{.front = tunable_tank(), .back = {}},
                      AxisPatterns{.front = tunable_tank(), .back = {}},
                      Varactor::smv1233().derated(2.0)};
  // The derated board at 30 V behaves like the ideal one at 15 V.
  const auto t_ideal = ideal.axis_transmission(kF0, Voltage{15.0}, false);
  const auto t_derated = derated.axis_transmission(kF0, Voltage{30.0}, false);
  EXPECT_NEAR(std::abs(t_ideal - t_derated), 0.0, 1e-6);
}

}  // namespace
}  // namespace llama::metasurface
