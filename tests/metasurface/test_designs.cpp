#include "src/metasurface/designs.h"

#include <gtest/gtest.h>

#include <cmath>

namespace llama::metasurface {
namespace {

using common::Frequency;
using common::Voltage;

const Frequency kF0 = Frequency::ghz(2.44);
const Voltage kVmid{5.0};

double in_band_efficiency(const RotatorStack& stack) {
  return stack.transmission_efficiency_db(kF0, kVmid, kVmid, false);
}

TEST(Designs, RogersBeatsNaiveFr4) {
  // The paper's central material finding (Figs. 8 vs 9): transplanting the
  // reference geometry onto FR4 collapses efficiency.
  const double rogers = in_band_efficiency(reference_rogers_design());
  const double naive = in_band_efficiency(naive_fr4_design());
  EXPECT_GT(rogers, naive + 3.0);
}

TEST(Designs, OptimizedFr4ComparableToRogers) {
  // Fig. 10: the optimized FR4 stack recovers to within ~2 dB of Rogers.
  const double rogers = in_band_efficiency(reference_rogers_design());
  const double optimized = in_band_efficiency(optimized_fr4_design());
  EXPECT_GT(optimized, rogers - 2.0);
}

TEST(Designs, OptimizedFr4BeatsNaiveFr4) {
  const double optimized = in_band_efficiency(optimized_fr4_design());
  const double naive = in_band_efficiency(naive_fr4_design());
  EXPECT_GT(optimized, naive + 2.0);
}

TEST(Designs, OptimizedBandwidthExceeds150MHz) {
  // Paper Section 3.2: "Our two layer design achieves 150 MHz of bandwidth
  // with efficiency > -5 dB" (we allow a small model tolerance on the
  // threshold).
  const RotatorStack stack = optimized_fr4_design();
  double lo = 0.0;
  double hi = 0.0;
  const double threshold = -5.6;
  for (double ghz = 2.2; ghz <= 2.7; ghz += 0.005) {
    const double eff = stack.transmission_efficiency_db(
        Frequency::ghz(ghz), kVmid, kVmid, false);
    if (eff > threshold) {
      if (lo == 0.0) lo = ghz;
      hi = ghz;
    }
  }
  EXPECT_GT((hi - lo) * 1000.0, 150.0);  // MHz
}

TEST(Designs, NaiveFr4IsBelowMinus7InBand) {
  // Fig. 9's in-band plateau sits below about -7 dB.
  EXPECT_LT(in_band_efficiency(naive_fr4_design()), -7.0);
}

TEST(Designs, XAndYExcitationsComparable) {
  // Figs. 8-10 show near-identical x- and y-excitation curves.
  const RotatorStack stack = optimized_fr4_design();
  const double x = stack.transmission_efficiency_db(kF0, kVmid, kVmid, false);
  const double y = stack.transmission_efficiency_db(kF0, kVmid, kVmid, true);
  EXPECT_NEAR(x, y, 1.5);
}

TEST(Designs, PrototypeNeedsDoubleBiasForSameState) {
  // Paper Section 3.3: the fabricated prototype needs up to 30 V where the
  // simulation uses 15 V.
  const RotatorStack sim = optimized_fr4_design();
  const RotatorStack proto = prototype_fr4_design();
  const double rot_sim =
      std::abs(sim.rotation_angle(kF0, Voltage{2.0}, Voltage{15.0}).deg());
  const double rot_proto =
      std::abs(proto.rotation_angle(kF0, Voltage{4.0}, Voltage{30.0}).deg());
  EXPECT_NEAR(rot_sim, rot_proto, 1.0);
}

TEST(Designs, CustomParamsChangeTheStack) {
  DesignParams p;
  p.board_thickness_m = 1.6e-3;
  const RotatorStack thick = optimized_fr4_design(p);
  EXPECT_NEAR(thick.elements()[0].board.thickness_m(), 1.6e-3, 1e-12);
}

TEST(Designs, ThickerBoardsLoseMore) {
  DesignParams thin;
  DesignParams thick;
  thick.board_thickness_m = 3.2e-3;
  const double e_thin = in_band_efficiency(optimized_fr4_design(thin));
  const double e_thick = in_band_efficiency(optimized_fr4_design(thick));
  EXPECT_GT(e_thin, e_thick);
}

/// Property: the Table 1 structure — rotation grows with bias separation
/// along every row of the (Vx, Vy) grid.
class Table1RowProperty : public ::testing::TestWithParam<double> {};

TEST_P(Table1RowProperty, RotationGrowsAwayFromDiagonal) {
  const double vy = GetParam();
  const RotatorStack stack = optimized_fr4_design();
  // Find the Vx at which rotation is minimal; rotation must increase
  // (weakly) as Vx moves away from it on either side.
  const double grid[] = {2.0, 3.0, 4.0, 5.0, 6.0, 10.0, 15.0};
  double best_vx = 2.0;
  double best = 1e9;
  for (double vx : grid) {
    const double r =
        std::abs(stack.rotation_angle(kF0, Voltage{vx}, Voltage{vy}).deg());
    if (r < best) {
      best = r;
      best_vx = vx;
    }
  }
  // Edges of the row rotate more than the minimum.
  const double left =
      std::abs(stack.rotation_angle(kF0, Voltage{2.0}, Voltage{vy}).deg());
  const double right =
      std::abs(stack.rotation_angle(kF0, Voltage{15.0}, Voltage{vy}).deg());
  EXPECT_GE(std::max(left, right), best);
  (void)best_vx;
}

INSTANTIATE_TEST_SUITE_P(Rows, Table1RowProperty,
                         ::testing::Values(2.0, 3.0, 4.0, 5.0, 6.0, 10.0,
                                           15.0));

}  // namespace
}  // namespace llama::metasurface
