#include "src/metasurface/metasurface.h"

#include <gtest/gtest.h>

#include <cmath>

namespace llama::metasurface {
namespace {

using common::Frequency;
using common::Voltage;

const Frequency kF0 = Frequency::ghz(2.44);

TEST(Metasurface, PrototypeSpecMatchesPaperSection4) {
  const Metasurface m = Metasurface::llama_prototype();
  EXPECT_DOUBLE_EQ(m.spec().width_m, 0.48);
  EXPECT_DOUBLE_EQ(m.spec().height_m, 0.48);
  EXPECT_EQ(m.spec().unit_count, 180u);
  EXPECT_EQ(m.spec().varactor_count, 720u);
  EXPECT_DOUBLE_EQ(m.spec().leakage_current_a, 15e-9);
}

TEST(Metasurface, CostBreakdownMatchesPaper) {
  // Paper Section 4: $540 of PCB + 720 x $0.50 varactors = $900 total,
  // $5 per unit.
  const CostBreakdown c = Metasurface::llama_prototype().cost();
  EXPECT_NEAR(c.varactors_usd, 360.0, 1e-9);
  EXPECT_NEAR(c.pcb_usd, 540.0, 1e-9);
  EXPECT_NEAR(c.total_usd, 900.0, 1e-9);
  EXPECT_NEAR(c.per_unit_usd, 5.0, 1e-9);
}

TEST(Metasurface, BiasIsClampedToSupplyRange) {
  Metasurface m = Metasurface::llama_prototype();
  m.set_bias(Voltage{45.0}, Voltage{-3.0});
  EXPECT_DOUBLE_EQ(m.bias_x().value(), 30.0);
  EXPECT_DOUBLE_EQ(m.bias_y().value(), 0.0);
}

TEST(Metasurface, DcPowerIsNanowatts) {
  // Paper Section 3.3: 15 nA leakage means the surface "can work even with
  // one buffer capacitor".
  Metasurface m = Metasurface::llama_prototype();
  m.set_bias(Voltage{30.0}, Voltage{30.0});
  EXPECT_LT(m.dc_power_w(), 1e-6);
  EXPECT_GT(m.dc_power_w(), 0.0);
}

TEST(Metasurface, ResponseChangesWithBias) {
  Metasurface m = Metasurface::llama_prototype();
  m.set_bias(Voltage{4.0}, Voltage{4.0});
  const auto j1 = m.response(kF0, SurfaceMode::kTransmissive);
  m.set_bias(Voltage{4.0}, Voltage{30.0});
  const auto j2 = m.response(kF0, SurfaceMode::kTransmissive);
  EXPECT_GT(std::abs(j1.at(1, 1) - j2.at(1, 1)), 1e-3);
}

TEST(Metasurface, RotationTracksStack) {
  Metasurface m = Metasurface::llama_prototype();
  m.set_bias(Voltage{4.0}, Voltage{30.0});
  EXPECT_NEAR(m.rotation_angle(kF0).deg(),
              m.stack().rotation_angle(kF0, Voltage{4.0}, Voltage{30.0}).deg(),
              1e-12);
}

TEST(Metasurface, TransmissiveAndReflectiveDiffer) {
  Metasurface m = Metasurface::llama_prototype();
  m.set_bias(Voltage{10.0}, Voltage{20.0});
  const auto t = m.response(kF0, SurfaceMode::kTransmissive);
  const auto r = m.response(kF0, SurfaceMode::kReflective);
  EXPECT_GT(std::abs(t.at(0, 0) - r.at(0, 0)), 1e-3);
}

TEST(Metasurface, EfficiencyAccessorsAgreeWithStack) {
  Metasurface m = Metasurface::llama_prototype();
  m.set_bias(Voltage{10.0}, Voltage{10.0});
  EXPECT_NEAR(m.transmission_efficiency_db(kF0, false),
              m.stack().transmission_efficiency_db(kF0, Voltage{10.0},
                                                   Voltage{10.0}, false),
              1e-12);
}

TEST(Metasurface, CustomLatticeSpecPropagates) {
  LatticeSpec spec;
  spec.unit_count = 3000;
  spec.varactor_count = 12000;
  spec.pcb_cost_usd = 3000.0;
  spec.varactor_unit_cost_usd = 0.25;
  const Metasurface m{optimized_fr4_design(), spec};
  // Paper: "we expect the unit cost can be reduced to $2 when there are
  // more than 3000 units per PCB".
  EXPECT_NEAR(m.cost().per_unit_usd, 2.0, 0.01);
}

}  // namespace
}  // namespace llama::metasurface
