// Golden correctness of the batched/cached response engine: the planned,
// cached and batched paths must reproduce the direct solver, and cached
// S-parameters must keep the physical invariants.
#include "src/metasurface/response_cache.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "src/metasurface/designs.h"
#include "src/metasurface/metasurface.h"

namespace llama::metasurface {
namespace {

using common::Frequency;
using common::Voltage;
using em::JonesMatrix;

constexpr double kTol = 1e-12;

const double kBiasSamples[] = {0.0, 2.0, 7.25, 13.5, 21.0, 30.0};
const double kFreqSamplesGhz[] = {2.0, 2.40, 2.44, 2.48, 2.8};

void expect_jones_near(const JonesMatrix& a, const JonesMatrix& b,
                       double tol, const std::string& what) {
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < 2; ++c) {
      EXPECT_NEAR(a.at(r, c).real(), b.at(r, c).real(), tol)
          << what << " [" << r << "," << c << "] re";
      EXPECT_NEAR(a.at(r, c).imag(), b.at(r, c).imag(), tol)
          << what << " [" << r << "," << c << "] im";
    }
}

TEST(BoardFrequencyPlan, PlannedSParamsMatchDirectSolver) {
  const RotatorStack stack = prototype_fr4_design();
  for (const StackElement& e : stack.elements()) {
    for (double ghz : kFreqSamplesGhz) {
      const Frequency f = Frequency::ghz(ghz);
      const BoardFrequencyPlan plan = e.board.make_frequency_plan(f);
      for (double v : kBiasSamples) {
        for (bool y_axis : {false, true}) {
          const auto direct = e.board.axis_sparams(f, Voltage{v}, y_axis);
          const auto planned =
              e.board.axis_sparams(plan, Voltage{v}, y_axis);
          EXPECT_NEAR(std::abs(direct.s11 - planned.s11), 0.0, kTol);
          EXPECT_NEAR(std::abs(direct.s21 - planned.s21), 0.0, kTol);
          EXPECT_NEAR(std::abs(direct.s12 - planned.s12), 0.0, kTol);
          EXPECT_NEAR(std::abs(direct.s22 - planned.s22), 0.0, kTol);
        }
      }
    }
  }
}

TEST(BoardFrequencyPlan, CachedSParamsKeepPhysicalInvariants) {
  const RotatorStack stack = prototype_fr4_design();
  for (const StackElement& e : stack.elements()) {
    const Frequency f = Frequency::ghz(2.44);
    const BoardFrequencyPlan plan = e.board.make_frequency_plan(f);
    for (double v : kBiasSamples) {
      for (bool y_axis : {false, true}) {
        const auto s = e.board.axis_sparams(plan, Voltage{v}, y_axis);
        EXPECT_TRUE(s.is_passive())
            << e.board.name() << " @ " << v << " V";
        EXPECT_TRUE(s.is_reciprocal())
            << e.board.name() << " @ " << v << " V";
      }
    }
  }
}

TEST(StackPlans, PlannedTransmissionAndReflectionMatchDirect) {
  const RotatorStack designs[] = {
      prototype_fr4_design(), optimized_fr4_design(), reference_rogers_design(),
      naive_fr4_design()};
  for (const RotatorStack& stack : designs) {
    for (double ghz : kFreqSamplesGhz) {
      const Frequency f = Frequency::ghz(ghz);
      const auto t_plan = stack.plan_transmission(f);
      const auto r_plan = stack.plan_reflection(f);
      for (double vx : kBiasSamples) {
        for (double vy : {0.0, 13.5, 30.0}) {
          expect_jones_near(stack.transmission(f, Voltage{vx}, Voltage{vy}),
                            stack.transmission(t_plan, Voltage{vx},
                                               Voltage{vy}),
                            kTol, "transmission");
          expect_jones_near(stack.reflection(f, Voltage{vx}, Voltage{vy}),
                            stack.reflection(r_plan, Voltage{vx},
                                             Voltage{vy}),
                            kTol, "reflection");
        }
      }
    }
  }
}

TEST(ResponseCacheTest, CachedResponseMatchesUncachedBothModes) {
  Metasurface uncached = Metasurface::llama_prototype();
  Metasurface cached = Metasurface::llama_prototype();
  cached.enable_response_cache();
  ASSERT_TRUE(cached.response_cache_enabled());

  for (double ghz : kFreqSamplesGhz) {
    const Frequency f = Frequency::ghz(ghz);
    for (auto mode : {SurfaceMode::kTransmissive, SurfaceMode::kReflective}) {
      for (double vx : kBiasSamples) {
        for (double vy : kBiasSamples) {
          uncached.set_bias(Voltage{vx}, Voltage{vy});
          cached.set_bias(Voltage{vx}, Voltage{vy});
          // Query twice: first populates the memo, second must hit it.
          const JonesMatrix reference = uncached.response(f, mode);
          expect_jones_near(reference, cached.response(f, mode), kTol,
                            "first (miss) query");
          expect_jones_near(reference, cached.response(f, mode), kTol,
                            "second (hit) query");
        }
      }
    }
  }
  const std::optional<ResponseCacheStats> stats =
      cached.response_cache_stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_GT(stats->hits, 0u);
  EXPECT_GT(stats->misses, 0u);
}

TEST(ResponseCacheTest, QuantizationBucketsShareOneEntry) {
  Metasurface surface = Metasurface::llama_prototype();
  ResponseCacheConfig config;
  config.voltage_quantum_v = 0.5;
  surface.enable_response_cache(config);
  const Frequency f = Frequency::ghz(2.44);

  surface.set_bias(Voltage{10.1}, Voltage{10.1});
  const JonesMatrix a = surface.response(f, SurfaceMode::kTransmissive);
  surface.set_bias(Voltage{10.2}, Voltage{10.2});
  const JonesMatrix b = surface.response(f, SurfaceMode::kTransmissive);
  // Both biases quantize to 10.0 V, so the second query is a pure hit and
  // returns the identical matrix.
  expect_jones_near(a, b, 0.0, "same-bucket responses");
  const std::optional<ResponseCacheStats> stats =
      surface.response_cache_stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->hits, 1u);
  EXPECT_EQ(stats->misses, 1u);

  // And the shared value is the response at the quantized representative.
  Metasurface reference = Metasurface::llama_prototype();
  reference.set_bias(Voltage{10.0}, Voltage{10.0});
  expect_jones_near(reference.response(f, SurfaceMode::kTransmissive), a,
                    kTol, "quantized representative");
}

TEST(ResponseCacheTest, LruEvictionBoundsTheCacheAndKeepsCorrectness) {
  Metasurface surface = Metasurface::llama_prototype();
  Metasurface reference = Metasurface::llama_prototype();
  ResponseCacheConfig config;
  config.capacity = 4;
  surface.enable_response_cache(config);
  const Frequency f = Frequency::ghz(2.44);

  for (int pass = 0; pass < 2; ++pass) {
    for (double v : {0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0}) {
      surface.set_bias(Voltage{v}, Voltage{v});
      reference.set_bias(Voltage{v}, Voltage{v});
      expect_jones_near(reference.response(f, SurfaceMode::kTransmissive),
                        surface.response(f, SurfaceMode::kTransmissive),
                        kTol, "evicting cache");
    }
  }
  const std::optional<ResponseCacheStats> stats =
      surface.response_cache_stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_GT(stats->evictions, 0u);
}

TEST(ResponseCacheTest, DisableRestoresDirectPath) {
  Metasurface surface = Metasurface::llama_prototype();
  surface.enable_response_cache();
  surface.set_bias(Voltage{5.0}, Voltage{5.0});
  (void)surface.response(Frequency::ghz(2.44), SurfaceMode::kTransmissive);
  surface.disable_response_cache();
  EXPECT_FALSE(surface.response_cache_enabled());
  EXPECT_FALSE(surface.response_cache_stats().has_value());
}

TEST(ResponseCacheTest, ClearResetsStatistics) {
  // Regression: clear() dropped the entries but left the previous run's
  // hit/miss/eviction counters in place, so a fresh measurement epoch
  // started with stale statistics.
  ResponseCache cache{ResponseCacheConfig{.capacity = 2}};
  const Frequency f = Frequency::ghz(2.44);
  const auto key = [&](double v) {
    return cache.make_key(f, Voltage{v}, Voltage{v}, 0);
  };
  cache.insert(key(1.0), JonesMatrix::identity());
  cache.insert(key(2.0), JonesMatrix::identity());
  cache.insert(key(3.0), JonesMatrix::identity());  // evicts
  EXPECT_TRUE(cache.find(key(3.0)).has_value());    // hit
  EXPECT_FALSE(cache.find(key(9.0)).has_value());   // miss
  EXPECT_GT(cache.stats().hits, 0u);
  EXPECT_GT(cache.stats().misses, 0u);
  EXPECT_GT(cache.stats().evictions, 0u);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(ResponseCacheTest, SignedZeroFrequencyMapsToOneKey) {
  // Regression: make_key bit_cast the raw frequency, so -0.0 Hz and 0.0 Hz
  // (equal values, different bit patterns) produced distinct keys and an
  // entry written under one was invisible under the other.
  ResponseCache cache{ResponseCacheConfig{}};
  const auto k_pos =
      cache.make_key(Frequency::hz(0.0), Voltage{1.0}, Voltage{2.0}, 0);
  const auto k_neg =
      cache.make_key(Frequency::hz(-0.0), Voltage{1.0}, Voltage{2.0}, 0);
  EXPECT_EQ(k_pos.frequency_bits, k_neg.frequency_bits);
  EXPECT_TRUE(k_pos == k_neg);
  cache.insert(k_pos, JonesMatrix::identity());
  EXPECT_TRUE(cache.find(k_neg).has_value());
}

TEST(ResponseCacheTest, NanFrequencyIsRejected) {
  // NaN bits would poison the map with a key no equal-comparing lookup can
  // ever match (NaN != NaN), leaking an unreachable entry per insert.
  ResponseCache cache{ResponseCacheConfig{}};
  EXPECT_THROW((void)cache.make_key(Frequency::hz(std::nan("")),
                                    Voltage{1.0}, Voltage{1.0}, 0),
               std::invalid_argument);
}

TEST(ResponseCacheTest, RejectsInvalidConfig) {
  EXPECT_THROW(ResponseCache(ResponseCacheConfig{.voltage_quantum_v = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(ResponseCache(ResponseCacheConfig{.capacity = 0}),
               std::invalid_argument);
}

TEST(ResponseGrid, MatchesPointwiseResponses) {
  Metasurface surface = Metasurface::llama_prototype();
  const Frequency f = Frequency::ghz(2.44);
  const std::vector<double> vxs{0.0, 7.5, 15.0, 30.0};
  const std::vector<double> vys{0.0, 10.0, 30.0};
  for (auto mode : {SurfaceMode::kTransmissive, SurfaceMode::kReflective}) {
    const JonesGrid grid = surface.response_grid(f, mode, vxs, vys);
    ASSERT_EQ(grid.size(), vys.size());
    for (std::size_t iy = 0; iy < vys.size(); ++iy) {
      ASSERT_EQ(grid[iy].size(), vxs.size());
      for (std::size_t ix = 0; ix < vxs.size(); ++ix) {
        surface.set_bias(Voltage{vxs[ix]}, Voltage{vys[iy]});
        expect_jones_near(surface.response(f, mode), grid[iy][ix], kTol,
                          "grid cell");
      }
    }
  }
}

TEST(ResponseGrid, BatchMatchesPointwiseResponses) {
  Metasurface surface = Metasurface::llama_prototype();
  const Frequency f = Frequency::ghz(2.44);
  const BiasList points{{Voltage{0.0}, Voltage{30.0}},
                        {Voltage{12.3}, Voltage{4.5}},
                        {Voltage{30.0}, Voltage{0.0}}};
  const auto batch =
      surface.response_batch(f, SurfaceMode::kTransmissive, points);
  ASSERT_EQ(batch.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    surface.set_bias(points[i].first, points[i].second);
    expect_jones_near(surface.response(f, SurfaceMode::kTransmissive),
                      batch[i], kTol, "batch point");
  }
}

TEST(ResponseGrid, ThreadCountDoesNotChangeBytes) {
  const Metasurface surface = Metasurface::llama_prototype();
  const Frequency f = Frequency::ghz(2.44);
  std::vector<double> axis;
  for (double v = 0.0; v <= 30.0; v += 2.0) axis.push_back(v);
  for (auto mode : {SurfaceMode::kTransmissive, SurfaceMode::kReflective}) {
    const JonesGrid serial = surface.response_grid(f, mode, axis, axis, 1);
    const JonesGrid parallel = surface.response_grid(f, mode, axis, axis, 5);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t iy = 0; iy < serial.size(); ++iy)
      for (std::size_t ix = 0; ix < serial[iy].size(); ++ix)
        for (int r = 0; r < 2; ++r)
          for (int c = 0; c < 2; ++c) {
            const auto a = serial[iy][ix].at(r, c);
            const auto b = parallel[iy][ix].at(r, c);
            // Byte-identical, not merely close.
            EXPECT_EQ(std::memcmp(&a, &b, sizeof(a)), 0);
          }
  }
}

}  // namespace
}  // namespace llama::metasurface
