#include "src/metasurface/rotator_stack.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/metasurface/designs.h"

namespace llama::metasurface {
namespace {

using common::Angle;
using common::Frequency;
using common::Voltage;

const Frequency kF0 = Frequency::ghz(2.44);

TEST(RotatorStack, RejectsEmptyStack) {
  EXPECT_THROW(RotatorStack(std::vector<StackElement>{}),
               std::invalid_argument);
}

TEST(RotatorStack, TransmissionIsPassive) {
  const RotatorStack stack = optimized_fr4_design();
  for (double ghz = 2.0; ghz <= 2.8; ghz += 0.1)
    for (double v = 0.0; v <= 30.0; v += 6.0) {
      const auto j =
          stack.transmission(Frequency::ghz(ghz), Voltage{v}, Voltage{v});
      EXPECT_LE(j.norm_bound(), 1.0 + 1e-6)
          << ghz << " GHz @ " << v << " V";
    }
}

TEST(RotatorStack, ReflectionIsPassive) {
  const RotatorStack stack = optimized_fr4_design();
  for (double v = 0.0; v <= 30.0; v += 10.0) {
    const auto j = stack.reflection(kF0, Voltage{v}, Voltage{v});
    EXPECT_LE(j.norm_bound(), 1.0 + 1e-6);
  }
}

TEST(RotatorStack, RotationDependsOnBiasDifference) {
  const RotatorStack stack = optimized_fr4_design();
  const double r_same =
      std::abs(stack.rotation_angle(kF0, Voltage{5.0}, Voltage{5.0}).deg());
  const double r_diff =
      std::abs(stack.rotation_angle(kF0, Voltage{2.0}, Voltage{15.0}).deg());
  EXPECT_GT(r_diff, r_same + 10.0);
}

TEST(RotatorStack, RotationRangeCoversPaperSpan) {
  // Paper: rotation within ~2-49 degrees across the (2..15 V)^2 grid.
  const RotatorStack stack = optimized_fr4_design();
  double min_rot = 1e9;
  double max_rot = 0.0;
  for (double vx : {2.0, 3.0, 4.0, 5.0, 6.0, 10.0, 15.0})
    for (double vy : {2.0, 3.0, 4.0, 5.0, 6.0, 10.0, 15.0}) {
      const double r =
          std::abs(stack.rotation_angle(kF0, Voltage{vx}, Voltage{vy}).deg());
      min_rot = std::min(min_rot, r);
      max_rot = std::max(max_rot, r);
    }
  EXPECT_LT(min_rot, 5.0);
  EXPECT_GT(max_rot, 40.0);
  EXPECT_LT(max_rot, 70.0);
}

TEST(RotatorStack, MaxRotationAtOppositeExtremes) {
  // Table 1's corners: the largest rotations occur when Vx and Vy sit at
  // opposite ends of the sweep.
  const RotatorStack stack = optimized_fr4_design();
  const double corner =
      std::abs(stack.rotation_angle(kF0, Voltage{15.0}, Voltage{2.0}).deg());
  const double center =
      std::abs(stack.rotation_angle(kF0, Voltage{6.0}, Voltage{6.0}).deg());
  EXPECT_GT(corner, center + 20.0);
}

TEST(RotatorStack, EfficiencyMeetsPaperFloorInIsmBand) {
  // Paper Fig. 11: transmission efficiency above -8 dB across 2.4-2.5 GHz
  // for the sweep's voltage combinations.
  const RotatorStack stack = optimized_fr4_design();
  for (double ghz = 2.40; ghz <= 2.501; ghz += 0.02)
    for (double vy : {2.0, 5.0, 10.0, 15.0}) {
      const double eff = stack.transmission_efficiency_db(
          Frequency::ghz(ghz), Voltage{5.0}, Voltage{vy}, false);
      EXPECT_GT(eff, -8.5) << ghz << " GHz, Vy=" << vy;
    }
}

TEST(RotatorStack, EfficiencyRollsOffOutOfBand) {
  const RotatorStack stack = optimized_fr4_design();
  const double in_band = stack.transmission_efficiency_db(
      kF0, Voltage{5.0}, Voltage{5.0}, false);
  const double out_low = stack.transmission_efficiency_db(
      Frequency::ghz(2.0), Voltage{5.0}, Voltage{5.0}, false);
  const double out_high = stack.transmission_efficiency_db(
      Frequency::ghz(2.8), Voltage{5.0}, Voltage{5.0}, false);
  EXPECT_GT(in_band, out_low + 4.0);
  EXPECT_GT(in_band, out_high + 4.0);
}

TEST(RotatorStack, ReflectionVoltageContrastSmallerThanTransmissive) {
  // Paper Section 5.2.1: "the signal power difference over different
  // voltage combinations is much smaller than that in the transmission
  // scenario".
  const RotatorStack stack = optimized_fr4_design();
  auto spread = [&](bool reflective) {
    double lo = 1e9;
    double hi = -1e9;
    for (double vx = 0.0; vx <= 30.0; vx += 5.0)
      for (double vy = 0.0; vy <= 30.0; vy += 5.0) {
        const auto j = reflective
                           ? stack.reflection(kF0, Voltage{vx}, Voltage{vy})
                           : stack.transmission(kF0, Voltage{vx}, Voltage{vy});
        // Power coupled from x-in to x-out (a fixed polarization probe).
        const double p = std::norm(j.at(0, 0));
        lo = std::min(lo, p);
        hi = std::max(hi, p);
      }
    return 10.0 * std::log10(hi / std::max(lo, 1e-12));
  };
  EXPECT_LT(spread(true), spread(false));
}

TEST(RotatorStack, TotalThicknessMatchesPrototypeScale) {
  const RotatorStack stack = optimized_fr4_design();
  // Six 0.8 mm boards + 41 mm of spacing ~= 46 mm of structure depth;
  // board thickness alone is the paper's quoted 5 mm of PCB.
  double boards_only = 0.0;
  for (const auto& e : stack.elements()) boards_only += e.board.thickness_m();
  EXPECT_NEAR(boards_only, 4.8e-3, 0.5e-3);
  EXPECT_GT(stack.total_thickness_m(), boards_only);
}

TEST(RotatorStack, SixElementStackLayout) {
  const RotatorStack stack = optimized_fr4_design();
  ASSERT_EQ(stack.elements().size(), 6u);
  EXPECT_FALSE(stack.elements()[0].tunable);
  EXPECT_TRUE(stack.elements()[2].tunable);
  EXPECT_TRUE(stack.elements()[3].tunable);
  EXPECT_FALSE(stack.elements()[5].tunable);
  EXPECT_NEAR(stack.elements()[0].rotation.deg(), 45.0, 1e-9);
  EXPECT_NEAR(stack.elements()[5].rotation.deg(), -45.0, 1e-9);
}

TEST(RotatorStack, FrequencyShiftsRotation) {
  // Dispersion: the rotation angle drifts across the band, which is why the
  // paper evaluates the full 2.4-2.5 GHz range (Fig. 17).
  const RotatorStack stack = optimized_fr4_design();
  const double r_low = std::abs(
      stack.rotation_angle(Frequency::ghz(2.40), Voltage{2.0}, Voltage{15.0})
          .deg());
  const double r_high = std::abs(
      stack.rotation_angle(Frequency::ghz(2.50), Voltage{2.0}, Voltage{15.0})
          .deg());
  EXPECT_GT(std::abs(r_low - r_high), 0.5);
}

/// Property: at every bias pair, reciprocity of the full transmission Jones
/// matrix holds in the form J(vx,vy) staying bounded and the co-polar terms
/// of x->x and y->y being exchanged under swapping bias AND axes.
class StackBiasSymmetry
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(StackBiasSymmetry, CrossTermsBalanced) {
  const auto [vx, vy] = GetParam();
  const RotatorStack stack = optimized_fr4_design();
  const auto j = stack.transmission(kF0, Voltage{vx}, Voltage{vy});
  // For a (lossy) rotator, the two cross-polar terms have equal magnitude
  // and opposite sign: J_xy = -J_yx.
  EXPECT_NEAR(std::abs(j.at(0, 1) + j.at(1, 0)), 0.0, 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    BiasGrid, StackBiasSymmetry,
    ::testing::Values(std::make_pair(2.0, 2.0), std::make_pair(2.0, 15.0),
                      std::make_pair(15.0, 2.0), std::make_pair(5.0, 10.0),
                      std::make_pair(10.0, 5.0), std::make_pair(6.0, 6.0)));

}  // namespace
}  // namespace llama::metasurface
