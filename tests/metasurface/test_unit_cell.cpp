#include "src/metasurface/unit_cell.h"

#include <gtest/gtest.h>

#include <cmath>

namespace llama::metasurface {
namespace {

using microwave::Substrate;

TEST(PatternGeometry, DimensionsMatchPaperFig6b) {
  const PatternGeometry outer = PatternGeometry::qwp_outer();
  EXPECT_DOUBLE_EQ(outer.cell_w, 32e-3);
  EXPECT_DOUBLE_EQ(outer.strip_l, 12.4e-3);
  EXPECT_DOUBLE_EQ(outer.gap, 5.6e-3);
  const PatternGeometry inner = PatternGeometry::qwp_inner();
  EXPECT_DOUBLE_EQ(inner.gap, 7.2e-3);
  const PatternGeometry bfs = PatternGeometry::bfs();
  EXPECT_DOUBLE_EQ(bfs.cell_w, 40e-3);
  EXPECT_DOUBLE_EQ(bfs.strip_l, 23.2e-3);
  EXPECT_DOUBLE_EQ(bfs.gap, 0.4e-3);
}

TEST(PatternGeometry, StripInductanceIsNanohenryScale) {
  const auto bfs = PatternGeometry::bfs();
  const double l = bfs.strip_inductance_h(Substrate::fr4(), 0.8e-3);
  // The calibrated BFS tank inductance is ~6 nH; the quasi-static estimate
  // should land in the same regime (nanohenries, within ~3x).
  EXPECT_GT(l, 1e-9);
  EXPECT_LT(l, 30e-9);
}

TEST(PatternGeometry, LongerStripMoreInductance) {
  PatternGeometry a = PatternGeometry::bfs();
  PatternGeometry b = a;
  b.strip_l *= 2.0;
  EXPECT_GT(b.strip_inductance_h(Substrate::fr4(), 0.8e-3),
            a.strip_inductance_h(Substrate::fr4(), 0.8e-3));
}

TEST(PatternGeometry, NarrowGapMoreCapacitance) {
  PatternGeometry wide = PatternGeometry::bfs();
  PatternGeometry narrow = wide;
  narrow.gap /= 4.0;
  EXPECT_GT(narrow.gap_capacitance_f(Substrate::fr4()),
            wide.gap_capacitance_f(Substrate::fr4()));
}

TEST(PatternGeometry, BfsGapCapacitanceIsSubPicofarad) {
  // The varactor mounts across this 0.4 mm gap; the parasitic gap
  // capacitance must be small compared to the diode's 0.84-2.41 pF.
  const double c = PatternGeometry::bfs().gap_capacitance_f(Substrate::fr4());
  EXPECT_GT(c, 1e-15);
  EXPECT_LT(c, 1e-12);
}

TEST(PatternGeometry, HigherPermittivityMoreCapacitance) {
  const auto bfs = PatternGeometry::bfs();
  EXPECT_GT(bfs.gap_capacitance_f(Substrate::fr4()),
            bfs.gap_capacitance_f(Substrate::rogers5880()));
}

TEST(PatternGeometry, NoGapMeansNoCapacitance) {
  PatternGeometry g = PatternGeometry::bfs();
  g.gap = 0.0;
  EXPECT_DOUBLE_EQ(g.gap_capacitance_f(Substrate::fr4()), 0.0);
}

TEST(PatternGeometry, CopperFillIsSparse) {
  // Sub-wavelength patterns cover only a small fraction of the cell.
  for (const PatternGeometry& g :
       {PatternGeometry::qwp_outer(), PatternGeometry::qwp_inner(),
        PatternGeometry::bfs()}) {
    const double fill = g.copper_fill_fraction();
    EXPECT_GT(fill, 0.0);
    EXPECT_LT(fill, 0.35);
  }
}

TEST(Lattice, MeanPitchConsistentWithCellSizes) {
  // 180 cells in 480x480 mm: ~35.8 mm pitch, between the 32 mm QWP and
  // 40 mm BFS cell sizes of Fig. 6b.
  const double pitch = mean_cell_pitch_m();
  EXPECT_GT(pitch, 32e-3);
  EXPECT_LT(pitch, 40e-3);
}

}  // namespace
}  // namespace llama::metasurface
