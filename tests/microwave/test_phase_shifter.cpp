#include "src/microwave/phase_shifter.h"

#include <gtest/gtest.h>

#include <cmath>

namespace llama::microwave {
namespace {

using common::Frequency;
using common::Voltage;

PhaseShifterAxis make_axis() {
  return PhaseShifterAxis{Varactor::smv1233(), 5.0e-9, 0.3e-12, 0.3};
}

TEST(PhaseShifterAxis, ResonanceMovesUpWithBias) {
  const PhaseShifterAxis axis = make_axis();
  // Higher bias -> lower capacitance -> higher resonant frequency.
  EXPECT_GT(axis.resonance(Voltage{15.0}).in_hz(),
            axis.resonance(Voltage{2.0}).in_hz());
}

TEST(PhaseShifterAxis, ResonanceInMicrowaveRange) {
  const PhaseShifterAxis axis = make_axis();
  const double f_lo = axis.resonance(Voltage{2.0}).in_ghz();
  const double f_hi = axis.resonance(Voltage{15.0}).in_ghz();
  EXPECT_GT(f_lo, 0.5);
  EXPECT_LT(f_hi, 10.0);
}

TEST(PhaseShifterAxis, TransmissionPhaseShiftsWithBias) {
  const PhaseShifterAxis axis = make_axis();
  const Frequency f0 = Frequency::ghz(2.44);
  const double phase_lo =
      axis.abcd(f0, Voltage{2.0}).to_sparams().transmission_phase_rad();
  const double phase_hi =
      axis.abcd(f0, Voltage{15.0}).to_sparams().transmission_phase_rad();
  EXPECT_GT(std::abs(phase_hi - phase_lo), 0.05);
}

TEST(PhaseShifterAxis, StaysPassiveAcrossBiasAndBand) {
  const PhaseShifterAxis axis = make_axis();
  for (double ghz = 2.0; ghz <= 2.8; ghz += 0.1)
    for (double bias = 0.0; bias <= 30.0; bias += 5.0) {
      const SParams s =
          axis.abcd(Frequency::ghz(ghz), Voltage{bias}).to_sparams();
      EXPECT_TRUE(s.is_passive(1e-6)) << ghz << " GHz @ " << bias << " V";
    }
}

TEST(PhaseShifterAxis, RejectsBadParameters) {
  EXPECT_THROW(PhaseShifterAxis(Varactor::smv1233(), 0.0, 1e-12, 0.1),
               std::invalid_argument);
  EXPECT_THROW(PhaseShifterAxis(Varactor::smv1233(), 1e-9, -1e-12, 0.1),
               std::invalid_argument);
}

TEST(BandwidthEq12, QuarterWaveMatchesPozarForm) {
  // Quarter-wave transformer (m = 4) between 377 and 188 ohm with
  // Gamma_max = 0.2: fractional bandwidth from the classic closed form.
  const double z0 = 377.0;
  const double zl = 188.0;
  const double gamma = 0.2;
  const double df = phase_shifter_bandwidth_hz(2.44e9, 4.0, gamma, z0, zl);
  const double arg = gamma / std::sqrt(1.0 - gamma * gamma) *
                     2.0 * std::sqrt(z0 * zl) / std::abs(zl - z0);
  const double expected =
      2.44e9 * (2.0 - (4.0 / 3.14159265358979) * std::acos(arg));
  EXPECT_NEAR(df, expected, 1.0);
  EXPECT_GT(df, 0.0);
}

TEST(BandwidthEq12, BandwidthScalesWithLineLength) {
  // Paper: "transmission bandwidth of a phase shifter changes approximately
  // linearly with the length of the transmission line". In Eq. 12 the line
  // length is lambda/m, so smaller m (longer line) yields larger df.
  const double longer_line =
      phase_shifter_bandwidth_hz(2.44e9, 2.0, 0.2, 377.0, 188.0);
  const double shorter_line =
      phase_shifter_bandwidth_hz(2.44e9, 4.0, 0.2, 377.0, 188.0);
  EXPECT_GT(longer_line, shorter_line);
}

TEST(BandwidthEq12, SmallMismatchSaturatesAtFullBand) {
  // When the impedances nearly match, the arccos argument clamps to 1 and
  // the usable band spans the whole octave (df -> 2 f0).
  const double df =
      phase_shifter_bandwidth_hz(2.44e9, 4.0, 0.2, 377.0, 370.0);
  EXPECT_NEAR(df, 2.0 * 2.44e9, 1e3);
}

TEST(BandwidthEq12, TwoLayerDesignExceedsIsmBand) {
  // The paper claims its two-layer design achieves ~150 MHz of bandwidth,
  // wider than the <100 MHz ISM allocation. With moderate mismatch the
  // formula comfortably exceeds 100 MHz.
  const double df =
      phase_shifter_bandwidth_hz(2.44e9, 4.0, 0.3, 377.0, 188.0);
  EXPECT_GT(df, 100e6);
}

TEST(BandwidthEq12, RejectsBadArguments) {
  EXPECT_THROW((void)phase_shifter_bandwidth_hz(2.44e9, 0.0, 0.2, 377.0,
                                                188.0),
               std::invalid_argument);
  EXPECT_THROW((void)phase_shifter_bandwidth_hz(2.44e9, 4.0, 1.5, 377.0,
                                                188.0),
               std::invalid_argument);
  EXPECT_THROW((void)phase_shifter_bandwidth_hz(2.44e9, 4.0, 0.2, 377.0,
                                                377.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace llama::microwave
