#include "src/microwave/substrate.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/units.h"

namespace llama::microwave {
namespace {

const common::Frequency kF0 = common::Frequency::ghz(2.44);

TEST(Substrate, CatalogValuesMatchPaper) {
  const Substrate rogers = Substrate::rogers5880();
  const Substrate fr4 = Substrate::fr4();
  // Paper Section 3.2: Rogers 5880 tan d = 0.0009, FR4 tan d = 0.02.
  EXPECT_DOUBLE_EQ(rogers.loss_tangent(), 0.0009);
  EXPECT_DOUBLE_EQ(fr4.loss_tangent(), 0.02);
  EXPECT_GT(fr4.loss_tangent() / rogers.loss_tangent(), 20.0);
}

TEST(Substrate, Fr4IsMuchCheaper) {
  EXPECT_LT(Substrate::fr4().cost_usd_per_m2() * 5.0,
            Substrate::rogers5880().cost_usd_per_m2());
}

TEST(Substrate, ComplexPermittivityHasNegativeImaginary) {
  const auto er = Substrate::fr4().complex_epsilon_r();
  EXPECT_GT(er.real(), 1.0);
  EXPECT_LT(er.imag(), 0.0);
  EXPECT_NEAR(-er.imag() / er.real(), 0.02, 1e-12);
}

TEST(Substrate, WaveImpedanceBelowFreeSpace) {
  const auto z = Substrate::fr4().wave_impedance();
  EXPECT_LT(std::abs(z), 376.73);
  EXPECT_GT(std::abs(z), 100.0);
}

TEST(Substrate, PropagationConstantScalesWithFrequency) {
  const Substrate s = Substrate::fr4();
  const auto g1 = s.propagation_constant(common::Frequency::ghz(2.0));
  const auto g2 = s.propagation_constant(common::Frequency::ghz(4.0));
  EXPECT_NEAR(g2.imag() / g1.imag(), 2.0, 1e-6);
}

TEST(Substrate, AttenuationTracksLossTangent) {
  const double a_fr4 = Substrate::fr4().attenuation_db_per_mm(kF0);
  const double a_rog = Substrate::rogers5880().attenuation_db_per_mm(kF0);
  EXPECT_GT(a_fr4, a_rog);
  // Ratio ~ (tan_d * sqrt(er)) ratio ~ 22 * sqrt(4.4/2.2) ~= 31.
  EXPECT_NEAR(a_fr4 / a_rog, 31.4, 3.0);
}

TEST(Substrate, Fr4AttenuationOrderOfMagnitude) {
  // ~0.01 dB/mm at 2.44 GHz: small in bulk, which is why the paper's loss
  // story is dominated by resonant pattern dissipation, not slab loss.
  EXPECT_NEAR(Substrate::fr4().attenuation_db_per_mm(kF0), 0.0093, 0.002);
}

TEST(Substrate, RejectsNonPhysicalParameters) {
  EXPECT_THROW(Substrate("bad", 0.5, 0.01, 10.0), std::invalid_argument);
  EXPECT_THROW(Substrate("bad", 2.0, -0.1, 10.0), std::invalid_argument);
}

TEST(Substrate, LosslessHasNoAttenuation) {
  const Substrate ideal{"ideal", 2.2, 0.0, 0.0};
  EXPECT_NEAR(ideal.attenuation_db_per_mm(kF0), 0.0, 1e-12);
}

}  // namespace
}  // namespace llama::microwave
