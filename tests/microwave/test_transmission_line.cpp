#include "src/microwave/transmission_line.h"

#include <gtest/gtest.h>

#include <cmath>

namespace llama::microwave {
namespace {

const common::Frequency kF0 = common::Frequency::ghz(2.44);

TEST(DielectricSlab, ThinSlabIsNearlyTransparent) {
  const DielectricSlab slab{Substrate::fr4(), 0.8e-3};
  const SParams s = slab.abcd(kF0).to_sparams();
  EXPECT_GT(s.transmission_efficiency_db(), -0.5);
  EXPECT_TRUE(s.is_passive());
}

TEST(DielectricSlab, ThickerSlabsLoseMore) {
  const DielectricSlab thin{Substrate::fr4(), 0.8e-3};
  const DielectricSlab thick{Substrate::fr4(), 3.2e-3};
  EXPECT_GT(thick.bulk_loss_db(kF0), thin.bulk_loss_db(kF0));
  EXPECT_NEAR(thick.bulk_loss_db(kF0) / thin.bulk_loss_db(kF0), 4.0, 1e-6);
}

TEST(DielectricSlab, RogersLosesLessThanFr4) {
  const DielectricSlab fr4{Substrate::fr4(), 1.57e-3};
  const DielectricSlab rogers{Substrate::rogers5880(), 1.57e-3};
  EXPECT_LT(rogers.bulk_loss_db(kF0), fr4.bulk_loss_db(kF0));
}

TEST(DielectricSlab, HalfWaveSlabIsImpedanceTransparent) {
  // A lossless half-wavelength slab repeats the input impedance: |S11| ~ 0.
  const Substrate ideal{"ideal", 4.0, 0.0, 0.0};
  const double lambda_d = 0.123 / std::sqrt(4.0);
  const DielectricSlab slab{ideal, lambda_d / 2.0};
  const SParams s = slab.abcd(common::Frequency::ghz(2.44)).to_sparams();
  EXPECT_LT(std::abs(s.s11), 0.02);
}

TEST(DielectricSlab, RejectsNonPositiveThickness) {
  EXPECT_THROW(DielectricSlab(Substrate::fr4(), 0.0), std::invalid_argument);
  EXPECT_THROW(DielectricSlab(Substrate::fr4(), -1e-3),
               std::invalid_argument);
}

TEST(Microstrip, EffectiveEpsilonBetweenOneAndEr) {
  const Microstrip ms{Substrate::fr4(), 1.5e-3, 0.8e-3};
  EXPECT_GT(ms.effective_epsilon(), 1.0);
  EXPECT_LT(ms.effective_epsilon(), 4.4);
}

TEST(Microstrip, FiftyOhmGeometryOnFr4) {
  // Classic result: w/h ~ 1.9 on er=4.4 gives ~50 ohm.
  const Microstrip ms{Substrate::fr4(), 1.52e-3, 0.8e-3};
  EXPECT_NEAR(ms.characteristic_impedance(), 50.0, 5.0);
}

TEST(Microstrip, WiderTraceLowersImpedance) {
  const Microstrip narrow{Substrate::fr4(), 0.5e-3, 0.8e-3};
  const Microstrip wide{Substrate::fr4(), 3.0e-3, 0.8e-3};
  EXPECT_GT(narrow.characteristic_impedance(),
            wide.characteristic_impedance());
}

TEST(Microstrip, LcPerLengthConsistentWithImpedance) {
  const Microstrip ms{Substrate::fr4(), 1.5e-3, 0.8e-3};
  const double z0 = std::sqrt(ms.inductance_per_m() / ms.capacitance_per_m());
  EXPECT_NEAR(z0, ms.characteristic_impedance(), 1e-6);
}

TEST(Microstrip, GuidedWavelengthShorterThanFreeSpace) {
  const Microstrip ms{Substrate::fr4(), 1.5e-3, 0.8e-3};
  EXPECT_LT(ms.guided_wavelength_m(kF0), 0.1229);
  EXPECT_GT(ms.guided_wavelength_m(kF0), 0.1229 / std::sqrt(4.4));
}

TEST(Microstrip, RejectsNonPositiveDimensions) {
  EXPECT_THROW(Microstrip(Substrate::fr4(), 0.0, 1e-3),
               std::invalid_argument);
  EXPECT_THROW(Microstrip(Substrate::fr4(), 1e-3, -1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace llama::microwave
