#include "src/microwave/two_port.h"

#include <gtest/gtest.h>

#include <cmath>

namespace llama::microwave {
namespace {

constexpr double kTol = 1e-9;

TEST(Abcd, IdentityIsTransparent) {
  const SParams s = Abcd::identity().to_sparams();
  EXPECT_NEAR(std::abs(s.s21), 1.0, kTol);
  EXPECT_NEAR(std::abs(s.s11), 0.0, kTol);
  EXPECT_NEAR(s.transmission_efficiency_db(), 0.0, 1e-6);
}

TEST(Abcd, SeriesImpedanceMatchesClosedForm) {
  // S21 of a series Z in reference Z0: 2 Z0 / (2 Z0 + Z).
  const Complex z{100.0, 50.0};
  const SParams s = Abcd::series(z).to_sparams(50.0);
  const Complex expected = 2.0 * 50.0 / (2.0 * 50.0 + z);
  EXPECT_NEAR(std::abs(s.s21 - expected), 0.0, kTol);
}

TEST(Abcd, ShuntAdmittanceMatchesClosedForm) {
  // S21 of a shunt Y in reference Z0: 2 / (2 + Y Z0).
  const Complex y{0.0, 5e-3};
  const SParams s = Abcd::shunt(y).to_sparams(kZ0);
  const Complex expected = 2.0 / (2.0 + y * kZ0);
  EXPECT_NEAR(std::abs(s.s21 - expected), 0.0, kTol);
}

TEST(Abcd, ShuntSusceptancePhaseSign) {
  // Capacitive susceptance (B > 0) delays the wave: negative S21 phase.
  const SParams cap = Abcd::shunt(Complex{0.0, 3e-3}).to_sparams();
  EXPECT_LT(cap.transmission_phase_rad(), 0.0);
  const SParams ind = Abcd::shunt(Complex{0.0, -3e-3}).to_sparams();
  EXPECT_GT(ind.transmission_phase_rad(), 0.0);
}

TEST(Abcd, CascadeOrderMatters) {
  const Abcd a = Abcd::series(Complex{50.0, 0.0});
  const Abcd b = Abcd::shunt(Complex{0.01, 0.0});
  const Abcd ab = a * b;
  const Abcd ba = b * a;
  // series*shunt puts Z*Y into A; shunt*series puts it into D.
  EXPECT_GT(std::abs(ab.a() - ba.a()), 1e-12);
  EXPECT_NEAR(std::abs(ab.a() - ba.d()), 0.0, 1e-12);
}

TEST(Abcd, LosslessLineIsAllPass) {
  // Quarter-wave line at Z0 reference: |S21| = 1, phase -90 deg.
  const double beta = 2.0 * 3.14159265358979 / 0.123;  // 2.44 GHz in air
  const double quarter = 0.123 / 4.0;
  const SParams s =
      Abcd::line(Complex{kZ0, 0.0}, Complex{0.0, beta}, quarter).to_sparams();
  EXPECT_NEAR(std::abs(s.s21), 1.0, 1e-9);
  EXPECT_NEAR(s.transmission_phase_rad(), -3.14159265 / 2.0, 1e-6);
}

TEST(Abcd, MismatchedLineReflects) {
  const double beta = 2.0 * 3.14159265358979 / 0.123;
  const SParams s = Abcd::line(Complex{kZ0 / 2.0, 0.0}, Complex{0.0, beta},
                               0.123 / 4.0)
                        .to_sparams();
  EXPECT_GT(std::abs(s.s11), 0.1);
}

TEST(Abcd, LossyLineAttenuates) {
  const double alpha = 10.0;  // Np/m
  const double beta = 2.0 * 3.14159265358979 / 0.123;
  const SParams s = Abcd::line(Complex{kZ0, 0.0}, Complex{alpha, beta}, 0.05)
                        .to_sparams();
  // alpha * d = 0.5 Np ~= -4.34 dB of amplitude.
  EXPECT_NEAR(s.transmission_efficiency_db(), -2.0 * 0.5 * 4.3429, 0.1);
}

TEST(SParams, PassivityOfPassiveNetworks) {
  EXPECT_TRUE(Abcd::identity().to_sparams().is_passive());
  EXPECT_TRUE(Abcd::shunt(Complex{1e-3, 5e-3}).to_sparams().is_passive());
  EXPECT_TRUE(Abcd::series(Complex{20.0, 100.0}).to_sparams().is_passive());
}

TEST(SParams, ReciprocityOfReciprocalNetworks) {
  const SParams s =
      (Abcd::shunt(Complex{0.0, 2e-3}) * Abcd::series(Complex{10.0, 40.0}) *
       Abcd::shunt(Complex{0.0, -1e-3}))
          .to_sparams();
  EXPECT_TRUE(s.is_reciprocal(1e-9));
}

TEST(SParams, EfficiencyFloorsAtTinyMagnitude) {
  SParams s;
  s.s21 = Complex{0.0, 0.0};
  EXPECT_LE(s.transmission_efficiency_db(), -250.0);
}

TEST(SParams, ReflectionDbOfHalfAmplitude) {
  SParams s;
  s.s11 = Complex{0.5, 0.0};
  EXPECT_NEAR(s.reflection_db(), -6.0206, 1e-3);
}

/// Property: any cascade of passive elements stays passive and reciprocal.
class CascadePassivity : public ::testing::TestWithParam<int> {};

TEST_P(CascadePassivity, HoldsForRandomChains) {
  const int n = GetParam();
  Abcd chain = Abcd::identity();
  // Deterministic pseudo-random element parameters.
  unsigned state = static_cast<unsigned>(n) * 2654435761u;
  auto next = [&state]() {
    state = state * 1664525u + 1013904223u;
    return (state >> 8) / double(1 << 24);
  };
  for (int i = 0; i < n; ++i) {
    const double pick = next();
    if (pick < 0.4) {
      chain = chain * Abcd::shunt(Complex{next() * 1e-3,
                                          (next() - 0.5) * 2e-2});
    } else if (pick < 0.8) {
      chain = chain * Abcd::series(Complex{next() * 30.0,
                                           (next() - 0.5) * 400.0});
    } else {
      chain = chain * Abcd::line(Complex{kZ0 * (0.5 + next()), 0.0},
                                 Complex{next() * 5.0, 30.0 + next() * 50.0},
                                 0.001 + next() * 0.01);
    }
  }
  const SParams s = chain.to_sparams();
  EXPECT_TRUE(s.is_passive(1e-6)) << "n=" << n;
  EXPECT_TRUE(s.is_reciprocal(1e-7)) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(ChainLengths, CascadePassivity,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

}  // namespace
}  // namespace llama::microwave
