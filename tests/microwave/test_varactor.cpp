#include "src/microwave/varactor.h"

#include <gtest/gtest.h>

namespace llama::microwave {
namespace {

using common::Voltage;

TEST(Varactor, Smv1233MatchesPaperAnchors) {
  // Paper Section 3.2: 0.84 pF to 2.41 pF over 2 V to 15 V reverse bias.
  const Varactor v = Varactor::smv1233();
  EXPECT_NEAR(v.capacitance(Voltage{2.0}) * 1e12, 2.41, 0.05);
  EXPECT_NEAR(v.capacitance(Voltage{15.0}) * 1e12, 0.84, 0.05);
}

TEST(Varactor, CapacitanceIsMonotoneDecreasing) {
  const Varactor v = Varactor::smv1233();
  double prev = 1.0;  // 1 F, larger than anything physical
  for (double bias = 0.0; bias <= 30.0; bias += 0.5) {
    const double c = v.capacitance(Voltage{bias});
    EXPECT_LT(c, prev) << "bias=" << bias;
    EXPECT_GT(c, 0.0);
    prev = c;
  }
}

TEST(Varactor, NegativeBiasClampsToZeroVolt) {
  const Varactor v = Varactor::smv1233();
  EXPECT_DOUBLE_EQ(v.capacitance(Voltage{-3.0}),
                   v.capacitance(Voltage{0.0}));
}

TEST(Varactor, InverseMapRoundTrips) {
  const Varactor v = Varactor::smv1233();
  for (double bias : {2.0, 5.0, 10.0, 15.0, 25.0}) {
    const double c = v.capacitance(Voltage{bias});
    EXPECT_NEAR(v.bias_for_capacitance(c).value(), bias, 1e-6);
  }
}

TEST(Varactor, InverseMapClampsOutOfRange) {
  const Varactor v = Varactor::smv1233();
  EXPECT_NEAR(v.bias_for_capacitance(100e-12).value(), 0.0, 1e-9);
  EXPECT_NEAR(v.bias_for_capacitance(0.01e-12).value(), 30.0, 1e-9);
}

TEST(Varactor, SeriesResistanceIsSmallPositive) {
  const Varactor v = Varactor::smv1233();
  EXPECT_GT(v.series_resistance(), 0.0);
  EXPECT_LT(v.series_resistance(), 10.0);
}

TEST(Varactor, DeratedCurveIsStretchedAlongBias) {
  // Paper Section 3.3: fabricated boards need up to 30 V for the effect the
  // ideal diode shows at 15 V.
  const Varactor ideal = Varactor::smv1233();
  const Varactor real = ideal.derated(2.0);
  EXPECT_NEAR(real.capacitance(Voltage{30.0}),
              ideal.capacitance(Voltage{15.0}), 0.02e-12);
  EXPECT_NEAR(real.capacitance(Voltage{4.0}),
              ideal.capacitance(Voltage{2.0}), 0.02e-12);
}

TEST(Varactor, DeratingOneIsIdentity) {
  const Varactor ideal = Varactor::smv1233();
  const Varactor same = ideal.derated(1.0);
  EXPECT_DOUBLE_EQ(same.capacitance(Voltage{7.0}),
                   ideal.capacitance(Voltage{7.0}));
}

TEST(Varactor, RejectsBadParameters) {
  EXPECT_THROW(Varactor(0.0, 1.0, 0.5, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Varactor(1e-12, -1.0, 0.5, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)Varactor::smv1233().derated(0.0),
               std::invalid_argument);
}

/// Property: the tuning ratio over the paper's bias range covers the
/// 2.41/0.84 ~= 2.9x capacitance swing that sets the phase-shifter range.
TEST(Varactor, TuningRatioNearPaperValue) {
  const Varactor v = Varactor::smv1233();
  const double ratio =
      v.capacitance(Voltage{2.0}) / v.capacitance(Voltage{15.0});
  EXPECT_NEAR(ratio, 2.41 / 0.84, 0.15);
}

}  // namespace
}  // namespace llama::microwave
