#include "src/radio/devices.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/math_utils.h"

namespace llama::radio {
namespace {

using common::PowerDbm;
using common::Rng;

TEST(DeviceProfile, CatalogIsSensible) {
  const auto esp = DeviceProfile::esp8266();
  const auto ap = DeviceProfile::wifi_ap();
  const auto ble = DeviceProfile::ble_wearable();
  const auto pi = DeviceProfile::raspberry_pi();
  EXPECT_GT(ap.tx_power.value(), esp.tx_power.value());
  EXPECT_GT(esp.tx_power.value(), ble.tx_power.value());
  EXPECT_DOUBLE_EQ(ble.bandwidth.in_mhz(), 2.0);  // BLE channel
  EXPECT_DOUBLE_EQ(pi.bandwidth.in_mhz(), 2.0);
  EXPECT_DOUBLE_EQ(esp.bandwidth.in_mhz(), 20.0);  // Wi-Fi channel
}

TEST(RssiReporter, SamplesAreQuantized) {
  RssiReporter rep{DeviceProfile::esp8266(), Rng{1}};
  for (int i = 0; i < 50; ++i) {
    const double v = rep.sample(PowerDbm{-42.3}).value();
    EXPECT_NEAR(v, std::round(v), 1e-9);
  }
}

TEST(RssiReporter, MeanTracksTruePower) {
  RssiReporter rep{DeviceProfile::esp8266(), Rng{2}};
  const auto xs = rep.collect(PowerDbm{-40.0}, 5000);
  EXPECT_NEAR(common::mean(xs), -40.0, 0.3);
}

TEST(RssiReporter, SpreadMatchesJitterSpec) {
  const DeviceProfile p = DeviceProfile::esp8266();
  RssiReporter rep{p, Rng{3}};
  const auto xs = rep.collect(PowerDbm{-40.0}, 5000);
  // Quantization adds ~1/12 dB^2; jitter dominates.
  EXPECT_NEAR(common::stddev(xs), p.rssi_jitter_db, 0.3);
}

TEST(RssiReporter, CollectSizeAndDeterminism) {
  RssiReporter a{DeviceProfile::ble_wearable(), Rng{7}};
  RssiReporter b{DeviceProfile::ble_wearable(), Rng{7}};
  const auto xs = a.collect(PowerDbm{-65.0}, 100);
  const auto ys = b.collect(PowerDbm{-65.0}, 100);
  ASSERT_EQ(xs.size(), 100u);
  EXPECT_EQ(xs, ys);
}

TEST(RssiReporter, DistributionsSeparateWhenPowersDiffer) {
  // The Fig. 2 situation: match vs mismatch powers ~10 dB apart produce
  // clearly separated RSSI histograms.
  RssiReporter rep{DeviceProfile::esp8266(), Rng{11}};
  const auto strong = rep.collect(PowerDbm{-30.0}, 2000);
  const auto weak = rep.collect(PowerDbm{-40.0}, 2000);
  EXPECT_GT(common::mean(strong) - common::mean(weak), 8.0);
}

}  // namespace
}  // namespace llama::radio
