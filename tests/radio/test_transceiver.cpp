#include "src/radio/transceiver.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

namespace llama::radio {
namespace {

using common::PowerDbm;
using common::Rng;

Receiver make_rx(std::uint64_t seed = 1) {
  return Receiver{ReceiverConfig{}, Rng{seed}};
}

TEST(Receiver, DefaultsMatchPaperSetup) {
  const ReceiverConfig cfg;
  EXPECT_DOUBLE_EQ(cfg.sample_rate_hz, 1e6);   // paper: 1 MHz sampling
  EXPECT_DOUBLE_EQ(cfg.tone_offset_hz, 500e3);  // paper: 500 kHz tone
}

TEST(Receiver, NoiseFloorAroundMinus110) {
  EXPECT_NEAR(make_rx().noise_floor_dbm().value(), -110.0, 1.0);
}

TEST(Receiver, CaptureProducesRequestedSamples) {
  Receiver rx = make_rx();
  const IqCapture iq = rx.capture(PowerDbm{-50.0}, 1000);
  EXPECT_EQ(iq.samples.size(), 1000u);
  EXPECT_NEAR(iq.duration_s(), 1e-3, 1e-12);
}

TEST(Receiver, PowerEstimateTracksStrongSignal) {
  Receiver rx = make_rx();
  for (double dbm : {-30.0, -50.0, -70.0}) {
    const IqCapture iq = rx.capture(PowerDbm{dbm}, 20000);
    EXPECT_NEAR(Receiver::estimate_power(iq).value(), dbm, 0.5)
        << "dbm=" << dbm;
  }
}

TEST(Receiver, WeakSignalBottomsAtNoiseFloor) {
  Receiver rx = make_rx();
  const IqCapture iq = rx.capture(PowerDbm{-150.0}, 20000);
  EXPECT_NEAR(Receiver::estimate_power(iq).value(),
              rx.noise_floor_dbm().value(), 1.0);
}

TEST(Receiver, NearFloorSignalAddsOnTopOfNoise) {
  Receiver rx = make_rx();
  const double floor = rx.noise_floor_dbm().value();
  const IqCapture iq = rx.capture(PowerDbm{floor}, 50000);
  // Signal at the noise floor doubles total power: +3 dB over the floor.
  EXPECT_NEAR(Receiver::estimate_power(iq).value(), floor + 3.0, 0.7);
}

TEST(Receiver, EstimateOfEmptyCaptureIsFloor) {
  EXPECT_LE(Receiver::estimate_power(IqCapture{}).value(), -120.0);
}

TEST(Receiver, MeasureMatchesCaptureEstimate) {
  Receiver rx = make_rx();
  const double p = rx.measure(PowerDbm{-45.0}, 0.02).value();
  EXPECT_NEAR(p, -45.0, 0.5);
}

TEST(Receiver, DeterministicPerSeed) {
  Receiver a = make_rx(123);
  Receiver b = make_rx(123);
  EXPECT_DOUBLE_EQ(a.measure(PowerDbm{-60.0}, 0.01).value(),
                   b.measure(PowerDbm{-60.0}, 0.01).value());
}

TEST(Receiver, ToneFrequencyIsCorrect) {
  // Correlate the noise-free-ish capture against the expected tone: a
  // strong signal at the configured offset should dominate.
  Receiver rx = make_rx();
  const IqCapture iq = rx.capture(PowerDbm{-20.0}, 4096);
  std::complex<double> acc{0.0, 0.0};
  const double w = 2.0 * 3.14159265358979 * 500e3;
  for (std::size_t i = 0; i < iq.samples.size(); ++i) {
    const double t = static_cast<double>(i) / iq.sample_rate_hz;
    acc += iq.samples[i] * std::exp(std::complex<double>{0.0, -w * t});
  }
  const double coherent_mw =
      std::norm(acc / static_cast<double>(iq.samples.size()));
  EXPECT_NEAR(10.0 * std::log10(coherent_mw), -20.0, 0.5);
}

TEST(Receiver, WindowCapKeepsMeasureFast) {
  Receiver rx = make_rx();
  // A 30 s window (the paper's baseline averaging) must not synthesize 30M
  // samples; the estimate is still accurate.
  const double p = rx.measure(PowerDbm{-40.0}, 30.0).value();
  EXPECT_NEAR(p, -40.0, 0.5);
}

TEST(Receiver, NonFiniteSignalPowerIsRejectedNotMeasured) {
  // Input contract: -inf means "no signal" (pure noise), but NaN and +inf
  // are upstream channel-model bugs and must fail loudly instead of
  // flowing into outage accounting as non-finite power.
  Receiver rx = make_rx();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW((void)rx.capture(PowerDbm{nan}, 16), std::invalid_argument);
  EXPECT_THROW((void)rx.capture(PowerDbm{inf}, 16), std::invalid_argument);
  EXPECT_THROW((void)rx.measure(PowerDbm{nan}, 0.02), std::invalid_argument);
  EXPECT_THROW((void)rx.measure(PowerDbm{inf}, 0.02), std::invalid_argument);
  EXPECT_THROW((void)rx.expected_measure(PowerDbm{nan}),
               std::invalid_argument);
  EXPECT_THROW((void)rx.expected_measure(PowerDbm{inf}),
               std::invalid_argument);
}

TEST(Receiver, MinusInfinitySignalMeansPureNoise) {
  Receiver rx = make_rx();
  const double inf = std::numeric_limits<double>::infinity();
  const double floor = rx.noise_floor_dbm().value();
  EXPECT_NEAR(rx.measure(PowerDbm{-inf}, 0.05).value(), floor, 1.0);
  EXPECT_NEAR(rx.expected_measure(PowerDbm{-inf}).value(), floor, 1e-9);
}

}  // namespace
}  // namespace llama::radio
