#include "src/sensing/breathing_target.h"

#include <gtest/gtest.h>

#include <cmath>

namespace llama::sensing {
namespace {

using common::Frequency;

const Frequency kF0 = Frequency::ghz(2.44);

BreathingTarget make_target() {
  return BreathingTarget{BreathingPattern{}, 2.6, 0.18};
}

TEST(BreathingTarget, DisplacementIsBoundedByExcursion) {
  const BreathingTarget t = make_target();
  for (double s = 0.0; s < 10.0; s += 0.05) {
    EXPECT_LE(std::abs(t.displacement_m(s)), 5e-3 + 1e-12);
  }
}

TEST(BreathingTarget, DisplacementIsPeriodicAtBreathingRate) {
  const BreathingTarget t = make_target();
  const double period = 1.0 / 0.25;
  for (double s : {0.3, 1.1, 2.7})
    EXPECT_NEAR(t.displacement_m(s), t.displacement_m(s + period), 1e-12);
}

TEST(BreathingTarget, ScatterMagnitudeIsConstant) {
  const BreathingTarget t = make_target();
  const double m0 = std::abs(t.scatter_coefficient(kF0, 0.0));
  for (double s = 0.0; s < 4.0; s += 0.25)
    EXPECT_NEAR(std::abs(t.scatter_coefficient(kF0, s)), m0, 1e-12);
}

TEST(BreathingTarget, ScatterPhaseBreathes) {
  const BreathingTarget t = make_target();
  // Peak-to-peak phase modulation: 2k * 2 * excursion ~= 0.51 rad * 2 at
  // 2.44 GHz with 5 mm excursion.
  double min_phase = 1e9;
  double max_phase = -1e9;
  for (double s = 0.0; s < 4.0; s += 0.01) {
    const double p = std::arg(t.scatter_coefficient(kF0, s) *
                              std::conj(t.scatter_coefficient(kF0, 0.0)));
    min_phase = std::min(min_phase, p);
    max_phase = std::max(max_phase, p);
  }
  const double k = 2.0 * 3.14159265358979 / 0.12287;
  EXPECT_NEAR(max_phase - min_phase, 2.0 * k * 2.0 * 5e-3, 0.1);
}

TEST(BreathingTarget, CustomPatternControlsRate) {
  BreathingPattern fast;
  fast.rate_hz = 0.5;  // 2 s period
  const BreathingTarget t{fast, 2.0, 0.1};
  EXPECT_NEAR(t.displacement_m(1.0), 0.0, 1e-9);   // half period: zero cross
  EXPECT_NEAR(t.displacement_m(0.5), fast.chest_excursion_m, 1e-9);  // crest
}

TEST(BreathingTarget, PhaseOffsetShiftsWaveform) {
  BreathingPattern shifted;
  shifted.phase_rad = 3.14159265358979 / 2.0;
  const BreathingTarget t{shifted, 2.0, 0.1};
  EXPECT_NEAR(t.displacement_m(0.0), shifted.chest_excursion_m, 1e-9);
}

TEST(BreathingTarget, RejectsBadArguments) {
  EXPECT_THROW(BreathingTarget(BreathingPattern{}, 0.0, 0.1),
               std::invalid_argument);
  EXPECT_THROW(BreathingTarget(BreathingPattern{}, 1.0, -0.1),
               std::invalid_argument);
  EXPECT_THROW(BreathingTarget(BreathingPattern{}, 1.0, 1.5),
               std::invalid_argument);
}

}  // namespace
}  // namespace llama::sensing
