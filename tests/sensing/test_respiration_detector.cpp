#include "src/sensing/respiration_detector.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/rng.h"

namespace llama::sensing {
namespace {

std::vector<double> synthetic_trace(double rate_hz, double ripple_db,
                                    double noise_db, double fs,
                                    double duration_s, std::uint64_t seed) {
  common::Rng rng{seed};
  std::vector<double> out;
  const int n = static_cast<int>(duration_s * fs);
  for (int i = 0; i < n; ++i) {
    const double t = i / fs;
    out.push_back(-50.0 +
                  ripple_db / 2.0 *
                      std::sin(2.0 * 3.14159265358979 * rate_hz * t) +
                  rng.gaussian(0.0, noise_db));
  }
  return out;
}

TEST(RespirationDetector, DetectsCleanBreathing) {
  RespirationDetector det;
  const auto trace = synthetic_trace(0.25, 2.0, 0.1, 10.0, 60.0, 1);
  const DetectionResult r = det.analyze(trace, 10.0);
  EXPECT_TRUE(r.detected);
  EXPECT_NEAR(r.rate_hz, 0.25, 0.04);
  EXPECT_GT(r.confidence, 0.5);
}

TEST(RespirationDetector, EstimatesDifferentRates) {
  RespirationDetector det;
  for (double rate : {0.15, 0.25, 0.4}) {
    const auto trace = synthetic_trace(rate, 2.0, 0.1, 10.0, 80.0, 2);
    const DetectionResult r = det.analyze(trace, 10.0);
    EXPECT_TRUE(r.detected) << "rate=" << rate;
    EXPECT_NEAR(r.rate_hz, rate, 0.05) << "rate=" << rate;
  }
}

TEST(RespirationDetector, RejectsPureNoise) {
  RespirationDetector det;
  const auto trace = synthetic_trace(0.25, 0.0, 1.0, 10.0, 60.0, 3);
  const DetectionResult r = det.analyze(trace, 10.0);
  EXPECT_FALSE(r.detected);
}

TEST(RespirationDetector, RejectsFlatTrace) {
  RespirationDetector det;
  const std::vector<double> flat(600, -50.0);
  EXPECT_FALSE(det.analyze(flat, 10.0).detected);
}

TEST(RespirationDetector, BuriedRippleFailsThenEmergesWithSnr) {
  // The Fig. 23 mechanism: the same breathing ripple is undetectable under
  // heavy noise and detectable once the signal (and thus the ripple in dB)
  // rises above the noise.
  RespirationDetector det;
  const auto buried = synthetic_trace(0.25, 0.3, 1.2, 10.0, 60.0, 4);
  const auto clear = synthetic_trace(0.25, 3.0, 0.4, 10.0, 60.0, 4);
  EXPECT_FALSE(det.analyze(buried, 10.0).detected);
  EXPECT_TRUE(det.analyze(clear, 10.0).detected);
}

TEST(RespirationDetector, ShortTraceIsRejectedGracefully) {
  RespirationDetector det;
  const std::vector<double> tiny(8, -50.0);
  const DetectionResult r = det.analyze(tiny, 10.0);
  EXPECT_FALSE(r.detected);
  EXPECT_DOUBLE_EQ(r.rate_hz, 0.0);
}

TEST(RespirationDetector, RippleMeasurementTracksAmplitude) {
  RespirationDetector det;
  const auto small = synthetic_trace(0.25, 1.0, 0.05, 10.0, 60.0, 5);
  const auto large = synthetic_trace(0.25, 4.0, 0.05, 10.0, 60.0, 5);
  EXPECT_GT(det.analyze(large, 10.0).ripple_db,
            det.analyze(small, 10.0).ripple_db);
}

TEST(RespirationDetector, RatesOutsideBandAreNotReported) {
  RespirationDetector det;  // band 0.1 - 0.6 Hz
  const auto trace = synthetic_trace(0.25, 2.0, 0.1, 10.0, 60.0, 6);
  const DetectionResult r = det.analyze(trace, 10.0);
  EXPECT_GE(r.rate_hz, 0.1);
  EXPECT_LE(r.rate_hz, 0.65);
}

TEST(RespirationDetector, LagBandRoundingKeepsReportedRateInsideBand) {
  // Regression: lag_min = static_cast<int>(10 / 0.6) truncated to 16, so a
  // tone just above the band's fast edge matched lag 16 and was reported at
  // 10/16 = 0.625 Hz — outside the configured [0.1, 0.6] Hz band. The lag
  // bounds must round inward (ceil/floor).
  RespirationDetector det;  // band 0.1 - 0.6 Hz
  const auto trace = synthetic_trace(0.62, 2.0, 0.05, 10.0, 60.0, 7);
  const DetectionResult r = det.analyze(trace, 10.0);
  ASSERT_GT(r.rate_hz, 0.0);
  EXPECT_GE(r.rate_hz, 0.1);
  EXPECT_LE(r.rate_hz, 0.6);
}

TEST(RespirationDetector, InBandEdgeRateIsStillDetected) {
  // The inward rounding must not break detection just inside the edge.
  RespirationDetector det;
  const auto trace = synthetic_trace(0.55, 2.0, 0.1, 10.0, 80.0, 8);
  const DetectionResult r = det.analyze(trace, 10.0);
  EXPECT_TRUE(r.detected);
  EXPECT_GE(r.rate_hz, 0.1);
  EXPECT_LE(r.rate_hz, 0.6);
}

TEST(RespirationDetector, RejectsBadOptions) {
  RespirationDetector::Options bad;
  bad.min_rate_hz = 0.0;
  EXPECT_THROW(RespirationDetector{bad}, std::invalid_argument);
  bad.min_rate_hz = 0.5;
  bad.max_rate_hz = 0.2;
  EXPECT_THROW(RespirationDetector{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace llama::sensing
