#include "src/sensing/spectral.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/rng.h"

namespace llama::sensing {
namespace {

std::vector<double> tone_trace(double rate_hz, double amplitude,
                               double noise, double fs, double duration_s,
                               std::uint64_t seed) {
  common::Rng rng{seed};
  std::vector<double> out;
  const int n = static_cast<int>(duration_s * fs);
  for (int i = 0; i < n; ++i) {
    const double t = i / fs;
    out.push_back(-50.0 +
                  amplitude * std::sin(2.0 * 3.14159265358979 * rate_hz * t) +
                  rng.gaussian(0.0, noise));
  }
  return out;
}

TEST(Goertzel, RecoversTonePower) {
  // A unit-amplitude sine has 0.25 power in each of its two spectral lines;
  // the single-sided Goertzel bin sees amplitude/2 squared.
  const auto xs = tone_trace(0.25, 1.0, 0.0, 10.0, 120.0, 1);
  std::vector<double> centered(xs);
  for (double& x : centered) x += 50.0;  // remove the DC offset
  const double p = goertzel_power(centered, 10.0, 0.25);
  EXPECT_NEAR(p, 0.25, 0.02);
}

TEST(Goertzel, OffFrequencyBinIsSmall) {
  const auto xs = tone_trace(0.25, 1.0, 0.0, 10.0, 120.0, 2);
  std::vector<double> centered(xs);
  for (double& x : centered) x += 50.0;
  EXPECT_LT(goertzel_power(centered, 10.0, 0.45),
            goertzel_power(centered, 10.0, 0.25) / 50.0);
}

TEST(Goertzel, EmptyInputIsZero) {
  EXPECT_DOUBLE_EQ(goertzel_power({}, 10.0, 0.25), 0.0);
}

TEST(SpectralAnalyzer, FindsBreathingLine) {
  SpectralRespirationAnalyzer analyzer;
  const auto trace = tone_trace(0.25, 1.0, 0.05, 10.0, 60.0, 3);
  const SpectralEstimate e = analyzer.analyze(trace, 10.0);
  EXPECT_TRUE(e.detected);
  EXPECT_NEAR(e.peak_frequency_hz, 0.25, 0.02);
  EXPECT_GT(e.prominence, 10.0);
}

TEST(SpectralAnalyzer, SeparatesNearbyRates) {
  SpectralRespirationAnalyzer analyzer;
  for (double rate : {0.2, 0.3, 0.45}) {
    const auto trace = tone_trace(rate, 1.0, 0.05, 10.0, 90.0, 4);
    const SpectralEstimate e = analyzer.analyze(trace, 10.0);
    EXPECT_NEAR(e.peak_frequency_hz, rate, 0.02) << "rate=" << rate;
  }
}

TEST(SpectralAnalyzer, RejectsNoise) {
  SpectralRespirationAnalyzer analyzer;
  const auto trace = tone_trace(0.25, 0.0, 1.0, 10.0, 60.0, 5);
  EXPECT_FALSE(analyzer.analyze(trace, 10.0).detected);
}

TEST(SpectralAnalyzer, ScanCoversConfiguredBand) {
  SpectralRespirationAnalyzer analyzer;
  const auto trace = tone_trace(0.25, 1.0, 0.1, 10.0, 60.0, 6);
  const SpectralEstimate e = analyzer.analyze(trace, 10.0);
  ASSERT_FALSE(e.spectrum.empty());
  EXPECT_NEAR(e.spectrum.front().frequency_hz, 0.1, 1e-9);
  EXPECT_NEAR(e.spectrum.back().frequency_hz, 0.6, 0.011);
}

TEST(SpectralAnalyzer, ShortTraceHandledGracefully) {
  SpectralRespirationAnalyzer analyzer;
  const std::vector<double> tiny(8, -50.0);
  EXPECT_FALSE(analyzer.analyze(tiny, 10.0).detected);
}

TEST(SpectralAnalyzer, AgreesWithAutocorrelationDetector) {
  // Cross-validation of the two detectors on the same clean trace.
  SpectralRespirationAnalyzer spectral;
  const auto trace = tone_trace(0.3, 1.5, 0.1, 10.0, 60.0, 7);
  const SpectralEstimate e = spectral.analyze(trace, 10.0);
  EXPECT_TRUE(e.detected);
  EXPECT_NEAR(e.peak_frequency_hz, 0.3, 0.03);
}

TEST(SpectralAnalyzer, RejectsBadOptions) {
  SpectralRespirationAnalyzer::Options bad;
  bad.min_rate_hz = 0.0;
  EXPECT_THROW(SpectralRespirationAnalyzer{bad}, std::invalid_argument);
  bad.min_rate_hz = 0.1;
  bad.scan_step_hz = 0.0;
  EXPECT_THROW(SpectralRespirationAnalyzer{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace llama::sensing
