// Log2 latency histogram: bucket placement, percentile interpolation
// bounds, merge arithmetic.
#include "src/serve/latency_histogram.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace llama::serve {
namespace {

TEST(LatencyHistogram, EmptyReportsZero) {
  const LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean_ns(), 0.0);
  EXPECT_EQ(h.p50_ns(), 0.0);
  EXPECT_EQ(h.p999_ns(), 0.0);
}

TEST(LatencyHistogram, MeanIsExactPercentilesBucketBounded) {
  LatencyHistogram h;
  h.record(100);
  h.record(200);
  h.record(300);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 200.0);  // the sum is tracked exactly
  // Every sample lives in [64, 512); percentiles interpolate inside their
  // bucket so they must stay within the covering range.
  for (double p : {0.1, 0.5, 0.9, 0.99, 0.999}) {
    EXPECT_GE(h.percentile_ns(p), 64.0);
    EXPECT_LE(h.percentile_ns(p), 512.0);
  }
}

TEST(LatencyHistogram, PercentilesAreMonotone) {
  LatencyHistogram h;
  for (std::uint64_t ns = 1; ns <= 4096; ns *= 2)
    for (int i = 0; i < 10; ++i) h.record(ns);
  EXPECT_LE(h.p50_ns(), h.p99_ns());
  EXPECT_LE(h.p99_ns(), h.p999_ns());
  EXPECT_GT(h.p50_ns(), 0.0);
}

TEST(LatencyHistogram, TailLandsInTopBucket) {
  LatencyHistogram h;
  for (int i = 0; i < 999; ++i) h.record(100);   // bucket [64, 128)
  h.record(1'000'000);                            // ~1 ms outlier
  // p50 stays with the bulk; p999+ must see the outlier's bucket.
  EXPECT_LT(h.p50_ns(), 128.0);
  EXPECT_GE(h.percentile_ns(0.9995), 524'288.0);  // 2^19 <= 1e6 < 2^20
}

TEST(LatencyHistogram, MergeAddsCountsAndSums) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.record(100);
  a.record(200);
  b.record(400);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean_ns(), (100.0 + 200.0 + 400.0) / 3.0);
  const LatencyHistogram empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 3u);
}

TEST(LatencyHistogram, ZeroNanosecondSampleIsCounted) {
  LatencyHistogram h;
  h.record(0);
  EXPECT_EQ(h.count(), 1u);
  // Bucket 0 covers exactly the value 0 over [0, 1): interpolation stays
  // below one nanosecond.
  EXPECT_LT(h.p50_ns(), 1.0);
}

}  // namespace
}  // namespace llama::serve
