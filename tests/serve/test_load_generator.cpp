// Open-loop load generator: schedules are a pure function of the seed,
// arrivals are monotone Poisson at the configured rate, and the kind mix
// tracks its weights.
#include "src/serve/load_generator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace llama::serve {
namespace {

LoadGeneratorConfig base_config() {
  LoadGeneratorConfig cfg;
  cfg.seed = 42;
  cfg.rate_hz = 10'000.0;
  cfg.duration_s = 0.5;
  cfg.n_devices = 16;
  cfg.mix = LoadMix::read_heavy();
  return cfg;
}

TEST(LoadGenerator, ScheduleIsDeterministicInTheSeed) {
  const LoadGeneratorConfig cfg = base_config();
  const std::vector<TimedRequest> a = generate_schedule(cfg);
  const std::vector<TimedRequest> b = generate_schedule(cfg);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].t_s, b[i].t_s);
    EXPECT_EQ(a[i].request.id, b[i].request.id);
    EXPECT_EQ(a[i].request.kind, b[i].request.kind);
    EXPECT_EQ(a[i].request.device, b[i].request.device);
    EXPECT_EQ(a[i].request.orientation.deg(), b[i].request.orientation.deg());
  }
  LoadGeneratorConfig other = cfg;
  other.seed = 43;
  const std::vector<TimedRequest> c = generate_schedule(other);
  // A different seed must actually change the stream.
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i)
    differs = a[i].t_s != c[i].t_s || a[i].request.device != c[i].request.device;
  EXPECT_TRUE(differs);
}

TEST(LoadGenerator, ArrivalsAreMonotoneWithinHorizonIdsSequential) {
  const std::vector<TimedRequest> schedule = generate_schedule(base_config());
  ASSERT_FALSE(schedule.empty());
  double last = 0.0;
  std::uint64_t id = 0;
  for (const TimedRequest& timed : schedule) {
    EXPECT_GE(timed.t_s, last);
    EXPECT_LE(timed.t_s, 0.5);
    EXPECT_EQ(timed.request.id, id++);
    EXPECT_LT(timed.request.device, 16u);
    EXPECT_GE(timed.request.orientation.deg(), 0.0);
    EXPECT_LT(timed.request.orientation.deg(), 180.0);
    last = timed.t_s;
  }
}

TEST(LoadGenerator, PoissonCountMatchesRateTimesDuration) {
  const LoadGeneratorConfig cfg = base_config();
  const std::vector<TimedRequest> schedule = generate_schedule(cfg);
  const double expected = cfg.rate_hz * cfg.duration_s;  // 5000
  // Poisson sd = sqrt(mean) ~ 71; 5 sigma keeps this deterministic-seed
  // test far from flaking while still catching a wrong rate.
  EXPECT_NEAR(static_cast<double>(schedule.size()), expected,
              5.0 * std::sqrt(expected));
}

TEST(LoadGenerator, KindMixTracksWeights) {
  LoadGeneratorConfig cfg = base_config();
  cfg.duration_s = 2.0;  // ~20k draws
  const std::vector<TimedRequest> schedule = generate_schedule(cfg);
  ASSERT_GT(schedule.size(), 10'000u);
  double counts[kRequestKinds] = {};
  for (const TimedRequest& timed : schedule)
    counts[static_cast<int>(timed.request.kind)] += 1.0;
  const double n = static_cast<double>(schedule.size());
  const double total = cfg.mix.total();
  for (int k = 0; k < static_cast<int>(kRequestKinds); ++k) {
    const double expected = cfg.mix.weight(static_cast<RequestKind>(k)) / total;
    EXPECT_NEAR(counts[k] / n, expected, 0.02)
        << "mix fraction for " << to_string(static_cast<RequestKind>(k));
  }
}

TEST(LoadGenerator, RetuneHeavyMixActuallyRetunes) {
  LoadGeneratorConfig cfg = base_config();
  cfg.mix = LoadMix::retune_heavy();
  const std::vector<TimedRequest> schedule = generate_schedule(cfg);
  std::size_t retunes = 0;
  for (const TimedRequest& timed : schedule)
    if (timed.request.kind == RequestKind::kRetune) ++retunes;
  EXPECT_GT(retunes, schedule.size() / 3);  // weight is 0.50 of the mix
}

TEST(LoadGenerator, DegenerateConfigsThrow) {
  LoadGeneratorConfig cfg = base_config();
  cfg.rate_hz = 0.0;
  EXPECT_THROW((void)generate_schedule(cfg), std::invalid_argument);
  cfg = base_config();
  cfg.duration_s = -1.0;
  EXPECT_THROW((void)generate_schedule(cfg), std::invalid_argument);
  cfg = base_config();
  cfg.n_devices = 0;
  EXPECT_THROW((void)generate_schedule(cfg), std::invalid_argument);
  cfg = base_config();
  cfg.mix = LoadMix{0.0, 0.0, 0.0, 0.0};
  EXPECT_THROW((void)generate_schedule(cfg), std::invalid_argument);
  cfg = base_config();
  cfg.mix.retune = -0.5;
  EXPECT_THROW((void)generate_schedule(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace llama::serve
