// MPMC queue contract: bounded capacity with backpressure, per-producer
// FIFO, close()-then-drain with no lost and no duplicated items — including
// under multi-producer/multi-consumer stress, which is what the TSan CI job
// exists to x-ray.
#include "src/serve/mpmc_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace llama::serve {
namespace {

TEST(MpmcQueue, RejectsNonPowerOfTwoCapacity) {
  EXPECT_THROW(MpmcQueue<int>(0), std::invalid_argument);
  EXPECT_THROW(MpmcQueue<int>(1), std::invalid_argument);
  EXPECT_THROW(MpmcQueue<int>(3), std::invalid_argument);
  EXPECT_THROW(MpmcQueue<int>(100), std::invalid_argument);
  EXPECT_NO_THROW(MpmcQueue<int>(2));
  EXPECT_NO_THROW(MpmcQueue<int>(1024));
}

TEST(MpmcQueue, FifoSingleThread) {
  MpmcQueue<int> q(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.try_push(i));
  int out = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.try_pop(out));
}

TEST(MpmcQueue, BoundedCapacityBackpressure) {
  MpmcQueue<int> q(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.try_push(i));
  // Full ring: pushes fail (backpressure), nothing is overwritten.
  EXPECT_FALSE(q.try_push(99));
  EXPECT_EQ(q.size_approx(), 4u);
  int out = -1;
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 0);
  // One slot freed: exactly one push succeeds again.
  EXPECT_TRUE(q.try_push(4));
  EXPECT_FALSE(q.try_push(5));
  for (int expect : {1, 2, 3, 4}) {
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, expect);
  }
}

TEST(MpmcQueue, CloseDrainsRemainingThenStops) {
  MpmcQueue<int> q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.try_push(i));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.try_push(99));  // no pushes after close
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.pop(out));  // drains what was already published
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.pop(out));  // closed AND empty: terminal
}

TEST(MpmcQueue, MultiProducerSingleConsumerKeepsPerProducerFifo) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 1500;
  MpmcQueue<std::uint64_t> q(256);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const std::uint64_t item =
            (static_cast<std::uint64_t>(p) << 32) |
            static_cast<std::uint64_t>(i);
        while (!q.try_push(item)) std::this_thread::yield();
      }
    });
  }
  std::vector<std::uint64_t> next(kProducers, 0);
  std::uint64_t item = 0;
  std::uint64_t drained = 0;
  while (drained < static_cast<std::uint64_t>(kProducers) * kPerProducer) {
    if (!q.try_pop(item)) {
      std::this_thread::yield();
      continue;
    }
    const std::uint64_t producer = item >> 32;
    const std::uint64_t seq = item & 0xFFFF'FFFFULL;
    ASSERT_LT(producer, static_cast<std::uint64_t>(kProducers));
    // The single consumer must see each producer's items in push order.
    EXPECT_EQ(seq, next[producer]) << "per-producer FIFO violated";
    next[producer] = seq + 1;
    ++drained;
  }
  for (std::thread& t : producers) t.join();
  EXPECT_FALSE(q.try_pop(item));
}

TEST(MpmcQueue, MpmcStressShutdownLosesAndDuplicatesNothing) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 1500;
  constexpr int kTotal = kProducers * kPerProducer;
  MpmcQueue<std::uint64_t> q(128);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const std::uint64_t item =
            (static_cast<std::uint64_t>(p) << 32) |
            static_cast<std::uint64_t>(i);
        while (!q.try_push(item)) std::this_thread::yield();
      }
    });
  }

  std::mutex collect_mutex;  // test-side aggregation, not the queue's path
  std::vector<std::uint64_t> collected;
  collected.reserve(kTotal);
  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&q, &collect_mutex, &collected] {
      std::vector<std::uint64_t> mine;
      std::uint64_t item = 0;
      // pop() blocks until an item arrives or the queue is closed+drained,
      // exactly the worker-shard loop.
      while (q.pop(item)) mine.push_back(item);
      const std::lock_guard<std::mutex> lock(collect_mutex);
      collected.insert(collected.end(), mine.begin(), mine.end());
    });
  }

  // The runtime's shutdown protocol: producers stop BEFORE close().
  for (std::thread& t : producers) t.join();
  q.close();
  for (std::thread& t : consumers) t.join();

  ASSERT_EQ(collected.size(), static_cast<std::size_t>(kTotal))
      << "shutdown drain lost or duplicated items";
  std::sort(collected.begin(), collected.end());
  EXPECT_EQ(std::adjacent_find(collected.begin(), collected.end()),
            collected.end())
      << "duplicated item";
  for (int p = 0; p < kProducers; ++p)
    for (int i = 0; i < kPerProducer; ++i) {
      const std::uint64_t expect = (static_cast<std::uint64_t>(p) << 32) |
                                   static_cast<std::uint64_t>(i);
      ASSERT_TRUE(std::binary_search(collected.begin(), collected.end(),
                                     expect))
          << "lost item from producer " << p << " seq " << i;
    }
}

}  // namespace
}  // namespace llama::serve
