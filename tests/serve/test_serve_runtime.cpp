// ServeRuntime end-to-end contracts: payload determinism across shard
// counts, lock-free forwarding of misrouted requests, admission engagement
// under overload with request conservation, and the lifecycle error
// surface.
#include "src/serve/serve_runtime.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <vector>

#include "src/codebook/compiler.h"
#include "src/core/scenarios.h"
#include "src/serve/load_generator.h"

namespace llama::serve {
namespace {

// Coarse-lattice compile so each test's fleet build stays in milliseconds;
// determinism only needs SOME codebook, not the full-resolution one.
codebook::CompilerOptions quick_compile() {
  codebook::CompilerOptions options;
  options.n_frequencies = 1;
  options.n_orientations = 13;
  options.v_step = common::Voltage{6.0};
  options.top_k = 1;
  return options;
}

core::ServingScenario small_scenario() {
  return core::serving_scenario(/*n_devices=*/8, /*m_surfaces=*/2);
}

ServingFleet make_fleet(const core::ServingScenario& scenario) {
  return build_serving_fleet(scenario.config, scenario.devices,
                             quick_compile());
}

std::vector<Response> sorted_by_id(std::vector<Response> responses) {
  std::sort(responses.begin(), responses.end(),
            [](const Response& a, const Response& b) { return a.id < b.id; });
  return responses;
}

std::optional<Response> find_by_id(const std::vector<Response>& responses,
                                   std::uint64_t id) {
  for (const Response& r : responses)
    if (r.id == id) return r;
  return std::nullopt;
}

TEST(ServeRuntime, PayloadsAreByteIdenticalForAnyShardCount) {
  const core::ServingScenario scenario = small_scenario();
  LoadGeneratorConfig load;
  load.seed = 7;
  load.rate_hz = 20'000.0;
  load.duration_s = 0.05;  // ~1000 requests
  load.n_devices = scenario.devices.size();
  load.frequency = scenario.config.frequency;
  load.mix = LoadMix::retune_heavy();  // mutate state, not just lookups
  const std::vector<TimedRequest> schedule = generate_schedule(load);
  ASSERT_GT(schedule.size(), 100u);

  std::optional<std::uint64_t> reference_fingerprint;
  std::vector<Response> reference;
  for (std::size_t n_shards : {1u, 2u, 4u}) {
    ServeTopology topology = scenario.topology;
    topology.n_shards = n_shards;
    // The determinism gate runs with admission DISABLED and unpaced
    // submission: every request is served, so the payload stream is a pure
    // function of the schedule.
    topology.admission = AdmissionConfig::unlimited();
    topology.keep_responses = true;
    topology.pin_threads = false;
    ServeRuntime runtime(topology, make_fleet(scenario));
    runtime.start();
    const OfferedLoad offered = drive(runtime, schedule, /*paced=*/false);
    const ServeReport report = runtime.stop();

    EXPECT_EQ(offered.submitted, schedule.size());
    EXPECT_EQ(report.submitted, schedule.size());
    EXPECT_TRUE(report.conserved());
    EXPECT_EQ(report.shed, 0u) << "unlimited admission must never shed";
    EXPECT_EQ(report.degraded, 0u);
    EXPECT_EQ(report.errors, 0u) << report.first_error;
    EXPECT_EQ(report.latency.count(), schedule.size());
    ASSERT_EQ(report.responses.size(), schedule.size());

    const std::vector<Response> responses = sorted_by_id(report.responses);
    if (!reference_fingerprint) {
      reference_fingerprint = report.payload_fingerprint;
      reference = responses;
      continue;
    }
    EXPECT_EQ(report.payload_fingerprint, *reference_fingerprint)
        << "payload fingerprint diverged at " << n_shards << " shards";
    ASSERT_EQ(responses.size(), reference.size());
    for (std::size_t i = 0; i < responses.size(); ++i) {
      EXPECT_EQ(responses[i].id, reference[i].id);
      EXPECT_EQ(responses[i].kind, reference[i].kind);
      EXPECT_EQ(responses[i].status, reference[i].status);
      // Byte-identical payloads, not merely close: the shard owning the
      // device runs the same deterministic pipeline in the same per-device
      // order whatever the shard count.
      EXPECT_EQ(responses[i].vx.value(), reference[i].vx.value());
      EXPECT_EQ(responses[i].vy.value(), reference[i].vy.value());
      EXPECT_EQ(responses[i].power.value(), reference[i].power.value());
      EXPECT_EQ(responses[i].counter, reference[i].counter);
    }
  }
}

TEST(ServeRuntime, MisroutedRequestIsForwardedToItsOwnerNotLost) {
  const core::ServingScenario scenario = small_scenario();
  ServeTopology topology = scenario.topology;
  topology.n_shards = 2;
  topology.admission = AdmissionConfig::unlimited();
  topology.keep_responses = true;
  topology.pin_threads = false;
  ServeRuntime runtime(topology, make_fleet(scenario));
  runtime.start();

  // Device 0 is owned by shard 0; inject its retune onto shard 1's queue.
  Request request;
  request.id = 77;
  request.kind = RequestKind::kRetune;
  request.device = 0;
  request.frequency = scenario.config.frequency;
  request.orientation = common::Angle::degrees(60.0);
  ASSERT_TRUE(runtime.inject_misrouted(1, request));
  const ServeReport report = runtime.stop();

  EXPECT_EQ(report.submitted, 1u);
  EXPECT_EQ(report.forwarded, 1u) << "wrong shard must forward, not serve";
  EXPECT_EQ(report.ok, 1u);
  EXPECT_TRUE(report.conserved());
  const std::optional<Response> response = find_by_id(report.responses, 77);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, ResponseStatus::kOk);
  EXPECT_EQ(response->counter, 1u);  // the owner really executed the retune
}

TEST(ServeRuntime, OverloadEngagesAdmissionWithoutLosingRequests) {
  const core::ServingScenario scenario = small_scenario();
  LoadGeneratorConfig load = scenario.overload;
  load.duration_s = 0.05;  // ~2500 requests, plenty to flood 64-deep rings
  const std::vector<TimedRequest> schedule = generate_schedule(load);
  ASSERT_GT(schedule.size(), 500u);

  ServeTopology topology = scenario.overload_topology;
  topology.pin_threads = false;
  ServeRuntime runtime(topology, make_fleet(scenario));
  runtime.start();
  const OfferedLoad offered = drive(runtime, schedule, /*paced=*/false);
  const ServeReport report = runtime.stop();  // must drain, not deadlock

  EXPECT_EQ(report.submitted, schedule.size());
  EXPECT_TRUE(report.conserved())
      << "submitted=" << report.submitted << " ok=" << report.ok
      << " degraded=" << report.degraded << " shed=" << report.shed;
  EXPECT_GT(report.shed, 0u) << "flooding shallow rings must shed";
  EXPECT_GT(report.degraded, 0u)
      << "retune-heavy flood must pass through the degrade tier";
  EXPECT_GT(report.ok, 0u);
  EXPECT_EQ(report.errors, 0u) << report.first_error;
  EXPECT_LE(offered.shed, report.shed)
      << "submit-side sheds are a subset of all sheds";
  EXPECT_GT(offered.shed, 0u);
  EXPECT_GT(report.achieved_rps, 0.0);
}

TEST(ServeRuntime, RetuneMeasureAndFleetQueryAgreeOnOwnedState) {
  const core::ServingScenario scenario = small_scenario();
  ServeTopology topology = scenario.topology;
  topology.n_shards = 1;
  topology.admission = AdmissionConfig::unlimited();
  topology.keep_responses = true;
  topology.pin_threads = false;
  ServeRuntime runtime(topology, make_fleet(scenario));
  runtime.start();

  Request request;
  request.device = 3;
  request.frequency = scenario.config.frequency;
  request.orientation = common::Angle::degrees(70.0);
  request.id = 1;
  request.kind = RequestKind::kRetune;
  ASSERT_NE(runtime.submit(request), ServeRuntime::Admit::kShed);
  request.id = 2;
  request.kind = RequestKind::kMeasure;
  ASSERT_NE(runtime.submit(request), ServeRuntime::Admit::kShed);
  request.id = 3;
  request.kind = RequestKind::kFleetQuery;
  ASSERT_NE(runtime.submit(request), ServeRuntime::Admit::kShed);
  request.id = 4;
  request.kind = RequestKind::kCodebookLookup;
  ASSERT_NE(runtime.submit(request), ServeRuntime::Admit::kShed);
  const ServeReport report = runtime.stop();

  ASSERT_EQ(report.responses.size(), 4u);
  const std::optional<Response> retune = find_by_id(report.responses, 1);
  const std::optional<Response> measure = find_by_id(report.responses, 2);
  const std::optional<Response> fleet = find_by_id(report.responses, 3);
  const std::optional<Response> lookup = find_by_id(report.responses, 4);
  ASSERT_TRUE(retune && measure && fleet && lookup);
  // Per-device FIFO: the retune happened first, so every later read sees
  // the programmed state.
  EXPECT_EQ(retune->counter, 1u);
  EXPECT_EQ(measure->counter, 1u);
  EXPECT_EQ(fleet->counter, 1u);
  EXPECT_EQ(measure->vx.value(), retune->vx.value());
  EXPECT_EQ(measure->vy.value(), retune->vy.value());
  // Same state, same deterministic measurement model: exactly equal.
  EXPECT_EQ(measure->power.value(), retune->power.value());
  EXPECT_EQ(fleet->power.value(), retune->power.value());
  // The retune programmed what the codebook holds for (f, 70 deg): the
  // supply echoes the commanded pair, so the lookup agrees bit-for-bit.
  EXPECT_EQ(lookup->vx.value(), retune->vx.value());
  EXPECT_EQ(lookup->vy.value(), retune->vy.value());
}

TEST(ServeRuntime, LifecycleAndValidationContracts) {
  const core::ServingScenario scenario = small_scenario();
  {
    ServeTopology bad = scenario.topology;
    bad.queue_depth = 100;  // not a power of two
    EXPECT_THROW(ServeRuntime(bad, make_fleet(scenario)),
                 std::invalid_argument);
  }
  ServeTopology topology = scenario.topology;
  topology.pin_threads = false;
  ServeRuntime runtime(topology, make_fleet(scenario));
  Request request;
  request.device = 0;
  EXPECT_THROW((void)runtime.submit(request), std::logic_error);
  EXPECT_THROW((void)runtime.stop(), std::logic_error);
  runtime.start();
  EXPECT_THROW(runtime.start(), std::logic_error);
  request.device = scenario.devices.size();  // one past the fleet
  EXPECT_THROW((void)runtime.submit(request), std::out_of_range);
  const ServeReport report = runtime.stop();
  EXPECT_EQ(report.submitted, 0u);
  EXPECT_THROW(runtime.start(), std::logic_error);  // one-shot
  EXPECT_THROW((void)runtime.submit(request), std::logic_error);
}

}  // namespace
}  // namespace llama::serve
