#include "src/track/fleet_tracker.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/codebook/compiler.h"
#include "src/core/scenarios.h"

namespace llama::track {
namespace {

using common::Angle;

PolicyFactory null_like_policy_factory() {
  struct Null final : RetunePolicy {
    [[nodiscard]] const char* name() const override { return "null"; }
    PolicyAction on_tick(core::LlamaSystem&, const TickObservation&) override {
      return {};
    }
  };
  return [] { return std::make_unique<Null>(); };
}

TEST(FleetTracker, ValidatesConfigAndSpecs) {
  core::MobileFleetScenario scenario = core::mobile_fleet_scenario(2, 1);
  {
    FleetConfig bad = scenario.config;
    bad.deployment.n_surfaces = 0;
    EXPECT_THROW((FleetTracker{bad}), std::invalid_argument);
  }
  FleetTracker tracker{scenario.config};
  EXPECT_THROW(
      (void)tracker.run(scenario.devices, null_like_policy_factory(), 0),
      std::invalid_argument);
  EXPECT_THROW((void)tracker.run(scenario.devices, PolicyFactory{}, 5),
               std::invalid_argument);
  {
    auto devices = scenario.devices;
    devices[1].surface = 3;  // only 1 surface configured
    EXPECT_THROW(
        (void)tracker.run(devices, null_like_policy_factory(), 5),
        std::out_of_range);
  }
  {
    auto devices = scenario.devices;
    devices[0].process = nullptr;
    EXPECT_THROW(
        (void)tracker.run(devices, null_like_policy_factory(), 5),
        std::invalid_argument);
  }
}

TEST(FleetTracker, RoundRobinAndExplicitSurfaceAssignment) {
  core::MobileFleetScenario scenario = core::mobile_fleet_scenario(4, 2);
  scenario.devices[3].surface = 0;  // explicit override
  FleetTracker tracker{scenario.config};
  const FleetReport report =
      tracker.run(scenario.devices, null_like_policy_factory(), 3);
  ASSERT_EQ(report.devices.size(), 4u);
  EXPECT_EQ(report.devices[0].surface, 0u);
  EXPECT_EQ(report.devices[1].surface, 1u);
  EXPECT_EQ(report.devices[2].surface, 0u);
  EXPECT_EQ(report.devices[3].surface, 0u);
  ASSERT_EQ(report.surfaces.size(), 2u);
  EXPECT_EQ(report.surfaces[0].device_count, 3u);
  EXPECT_EQ(report.surfaces[1].device_count, 1u);
}

TEST(FleetTracker, AggregatesMatchPerDeviceReports) {
  const core::MobileFleetScenario scenario = core::mobile_fleet_scenario(5, 2);
  const core::SystemConfig device_cfg = core::device_system_config(
      scenario.config.deployment, Angle::degrees(0.0));
  const codebook::Codebook book =
      codebook::CodebookCompiler{device_cfg}.compile();
  FleetTracker tracker{scenario.config};
  const FleetReport report = tracker.run(
      scenario.devices,
      [&book] { return std::make_unique<PredictiveCodebook>(book); }, 20);

  long retunes = 0;
  double airtime = 0.0;
  double outage_sum = 0.0;
  double delivered = 0.0;
  for (const DeviceTrackResult& d : report.devices) {
    retunes += d.report.retune_count;
    airtime += d.report.retune_airtime_s;
    outage_sum += d.report.outage_fraction;
    delivered += d.report.mean_delivered_mbps;
  }
  EXPECT_EQ(report.retune_count, retunes);
  EXPECT_DOUBLE_EQ(report.retune_airtime_s, airtime);
  EXPECT_DOUBLE_EQ(report.mean_outage_fraction, outage_sum / 5.0);
  EXPECT_DOUBLE_EQ(report.sum_delivered_mbps, delivered);
  // Every device retuned at least once (the initial programming switch).
  EXPECT_GE(report.retune_count, 5);

  double surface_airtime = 0.0;
  std::size_t surface_devices = 0;
  for (const SurfaceTrackSummary& s : report.surfaces) {
    surface_airtime += s.retune_airtime_s;
    surface_devices += s.device_count;
  }
  EXPECT_DOUBLE_EQ(surface_airtime, airtime);
  EXPECT_EQ(surface_devices, 5u);
}

TEST(FleetTracker, ByteIdenticalForAnyThreadCount) {
  core::MobileFleetScenario scenario = core::mobile_fleet_scenario(6, 2);
  const core::SystemConfig device_cfg = core::device_system_config(
      scenario.config.deployment, Angle::degrees(0.0));
  const codebook::Codebook book =
      codebook::CodebookCompiler{device_cfg}.compile();

  FleetReport reports[2];
  const int thread_counts[2] = {1, 4};
  for (int k = 0; k < 2; ++k) {
    FleetConfig cfg = scenario.config;
    cfg.deployment.threads = thread_counts[k];
    FleetTracker tracker{cfg};
    reports[k] = tracker.run(
        scenario.devices,
        [&book] { return std::make_unique<PredictiveCodebook>(book); }, 15);
  }
  ASSERT_EQ(reports[0].devices.size(), reports[1].devices.size());
  for (std::size_t i = 0; i < reports[0].devices.size(); ++i) {
    const TrackReport& a = reports[0].devices[i].report;
    const TrackReport& b = reports[1].devices[i].report;
    EXPECT_DOUBLE_EQ(a.mean_power_dbm, b.mean_power_dbm) << "device " << i;
    EXPECT_DOUBLE_EQ(a.outage_fraction, b.outage_fraction) << "device " << i;
    EXPECT_DOUBLE_EQ(a.retune_airtime_s, b.retune_airtime_s)
        << "device " << i;
    EXPECT_EQ(a.retune_count, b.retune_count) << "device " << i;
    EXPECT_DOUBLE_EQ(a.mean_delivered_mbps, b.mean_delivered_mbps)
        << "device " << i;
  }
  EXPECT_DOUBLE_EQ(reports[0].mean_outage_fraction,
                   reports[1].mean_outage_fraction);
  EXPECT_DOUBLE_EQ(reports[0].retune_airtime_s, reports[1].retune_airtime_s);
}

TEST(FleetTracker, LockstepLeakageChangesWhatDevicesHear) {
  // Same fleet, leakage model off vs on: with the scene's leakage paths in
  // play the devices' measured powers — and so their reports — differ.
  core::MobileFleetScenario off = core::mobile_fleet_scenario(4, 2);
  core::MobileFleetScenario on = core::mobile_fleet_scenario(4, 2);
  on.config.deployment.interference.enable_leakage = true;

  FleetTracker tracker_off{off.config};
  FleetTracker tracker_on{on.config};
  const FleetReport a =
      tracker_off.run(off.devices, null_like_policy_factory(), 12);
  const FleetReport b =
      tracker_on.run(on.devices, null_like_policy_factory(), 12);
  ASSERT_EQ(a.devices.size(), b.devices.size());
  bool any_power_differs = false;
  for (std::size_t i = 0; i < a.devices.size(); ++i)
    if (a.devices[i].report.mean_power_dbm !=
        b.devices[i].report.mean_power_dbm)
      any_power_differs = true;
  EXPECT_TRUE(any_power_differs);
}

TEST(FleetTracker, LockstepIsByteIdenticalForAnyThreadCount) {
  core::MobileFleetScenario scenario = core::mobile_fleet_scenario(5, 2);
  scenario.config.deployment.interference.enable_leakage = true;
  FleetConfig serial = scenario.config;
  serial.deployment.threads = 1;
  FleetConfig parallel = scenario.config;
  parallel.deployment.threads = 4;
  FleetTracker tracker_serial{serial};
  FleetTracker tracker_parallel{parallel};
  const FleetReport a =
      tracker_serial.run(scenario.devices, null_like_policy_factory(), 10);
  const FleetReport b =
      tracker_parallel.run(scenario.devices, null_like_policy_factory(), 10);
  ASSERT_EQ(a.devices.size(), b.devices.size());
  for (std::size_t i = 0; i < a.devices.size(); ++i) {
    EXPECT_EQ(a.devices[i].report.mean_power_dbm,
              b.devices[i].report.mean_power_dbm)
        << "device " << i;
    EXPECT_EQ(a.devices[i].report.outage_fraction,
              b.devices[i].report.outage_fraction);
  }
  EXPECT_EQ(a.sum_delivered_mbps, b.sum_delivered_mbps);
}

TEST(FleetTracker, OneDeviceRetunePerturbsItsNeighborsLink) {
  // Two static devices on two surfaces. In run A nobody retunes; in run B
  // device 1 reprograms its surface mid-episode. Device 0 never acts in
  // either run — but with leakage enabled its measured power must move
  // when its neighbor's surface switches bias.
  core::MobileFleetScenario scenario = core::mobile_fleet_scenario(2, 2);
  scenario.config.deployment.interference.enable_leakage = true;
  scenario.config.loop.keep_trace = true;
  for (track::FleetDeviceSpec& spec : scenario.devices)
    spec.process = [] {
      return std::make_unique<channel::StaticMount>(Angle::degrees(70.0));
    };

  struct ForcedRetune final : RetunePolicy {
    long retune_tick;
    explicit ForcedRetune(long tick) : retune_tick(tick) {}
    [[nodiscard]] const char* name() const override { return "forced"; }
    PolicyAction on_tick(core::LlamaSystem& system,
                         const TickObservation& obs) override {
      if (obs.tick != retune_tick) return {};
      system.supply().set_outputs(common::Voltage{27.0},
                                  common::Voltage{3.0});
      system.surface().set_bias(common::Voltage{27.0}, common::Voltage{3.0});
      PolicyAction action;
      action.retuned = true;
      return action;
    }
  };
  const auto factory_for = [](bool device1_retunes) {
    auto counter = std::make_shared<int>(0);
    return PolicyFactory{[counter, device1_retunes]()
                             -> std::unique_ptr<RetunePolicy> {
      const int index = (*counter)++;
      if (index == 1 && device1_retunes)
        return std::make_unique<ForcedRetune>(4);
      return std::make_unique<ForcedRetune>(-1);  // never fires
    }};
  };

  FleetTracker tracker{scenario.config};
  const FleetReport quiet =
      tracker.run(scenario.devices, factory_for(false), 10);
  const FleetReport perturbed =
      tracker.run(scenario.devices, factory_for(true), 10);

  const TrackReport& quiet_dev0 = quiet.devices[0].report;
  const TrackReport& pert_dev0 = perturbed.devices[0].report;
  ASSERT_EQ(quiet_dev0.trace.size(), 10u);
  ASSERT_EQ(pert_dev0.trace.size(), 10u);
  // Identical until the neighbor's retune lands (one-tick snapshot delay)...
  for (long t = 0; t <= 4; ++t)
    EXPECT_EQ(quiet_dev0.trace[t].power.value(),
              pert_dev0.trace[t].power.value())
        << "tick " << t;
  // ...then device 0's link moves although device 0 itself did nothing.
  bool diverged = false;
  for (long t = 5; t < 10; ++t)
    if (quiet_dev0.trace[t].power.value() !=
        pert_dev0.trace[t].power.value())
      diverged = true;
  EXPECT_TRUE(diverged);
  EXPECT_EQ(pert_dev0.retune_count, 0);
}

TEST(FleetTracker, ScenarioIsDeterministicAndWellFormed) {
  const core::MobileFleetScenario a = core::mobile_fleet_scenario(7, 3);
  const core::MobileFleetScenario b = core::mobile_fleet_scenario(7, 3);
  ASSERT_EQ(a.devices.size(), 7u);
  EXPECT_EQ(a.config.deployment.n_surfaces, 3u);
  EXPECT_FALSE(a.config.loop.keep_trace);
  for (std::size_t i = 0; i < a.devices.size(); ++i) {
    ASSERT_TRUE(a.devices[i].process != nullptr);
    // Factories built from the same scenario parameters generate identical
    // trajectories.
    const auto pa = a.devices[i].process();
    const auto pb = b.devices[i].process();
    for (double t : {0.0, 0.37, 1.1})
      EXPECT_DOUBLE_EQ(pa->orientation_at(t).deg(),
                       pb->orientation_at(t).deg())
          << "device " << i << " t " << t;
  }
}


// ---------------------------------------------------------------------------
// City-layout path: nearest-surface serving, per-device geometry from the
// real serving distance, device loop sharded over spatial cells.
// ---------------------------------------------------------------------------

core::MobileFleetScenario city_fleet_scenario(std::size_t n_devices,
                                              std::size_t m_surfaces) {
  core::MobileFleetScenario s =
      core::mobile_fleet_scenario(n_devices, m_surfaces);
  // Reuse the city generator's layout (street grid + leakage model) so the
  // tracker and CityFleetEngine agree on what a deployment looks like.
  s.config.deployment.layout =
      core::city_scale_scenario(m_surfaces, 1).config.layout;
  for (std::size_t i = 0; i < n_devices; ++i)
    s.devices[i].position = channel::Point2{
        3.0 + 11.0 * static_cast<double>(i % 5),
        5.0 + 9.0 * static_cast<double>(i / 5)};
  return s;
}

TEST(FleetTracker, CityLayoutValidation) {
  core::MobileFleetScenario scenario = city_fleet_scenario(4, 4);
  {
    FleetConfig bad = scenario.config;
    bad.deployment.layout.positions.pop_back();
    EXPECT_THROW((FleetTracker{bad}), std::invalid_argument);
  }
  {
    FleetConfig bad = scenario.config;
    bad.deployment.interference.enable_leakage = true;
    EXPECT_THROW((FleetTracker{bad}), std::invalid_argument);
  }
  FleetTracker tracker{scenario.config};
  auto devices = scenario.devices;
  devices[2].position.reset();
  EXPECT_THROW(
      (void)tracker.run(devices, null_like_policy_factory(), 3),
      std::invalid_argument);
}

TEST(FleetTracker, CityLayoutServesNearestSurface) {
  const core::MobileFleetScenario scenario = city_fleet_scenario(8, 6);
  FleetTracker tracker{scenario.config};
  const FleetReport report =
      tracker.run(scenario.devices, null_like_policy_factory(), 2);
  ASSERT_EQ(report.devices.size(), 8u);
  const auto& positions = scenario.config.deployment.layout.positions;
  for (std::size_t i = 0; i < report.devices.size(); ++i) {
    std::size_t best = 0;
    double best_d = channel::distance_m(*scenario.devices[i].position,
                                        positions[0]);
    for (std::size_t s = 1; s < positions.size(); ++s) {
      const double d = channel::distance_m(*scenario.devices[i].position,
                                           positions[s]);
      if (d < best_d) {
        best_d = d;
        best = s;
      }
    }
    EXPECT_EQ(report.devices[i].surface, best) << "device " << i;
  }
}

TEST(FleetTracker, CityLayoutByteIdenticalForAnyThreadCount) {
  const core::MobileFleetScenario scenario = city_fleet_scenario(10, 4);

  // HysteresisResweep needs no codebook: the city path gives every device
  // its own serving geometry, so a codebook compiled from the deployment
  // template would fail its config-hash check.
  FleetReport reports[2];
  const int thread_counts[2] = {1, 4};
  for (int k = 0; k < 2; ++k) {
    FleetConfig cfg = scenario.config;
    cfg.deployment.threads = thread_counts[k];
    FleetTracker tracker{cfg};
    reports[k] = tracker.run(
        scenario.devices,
        [] { return std::make_unique<HysteresisResweep>(); }, 10);
  }
  ASSERT_EQ(reports[0].devices.size(), reports[1].devices.size());
  for (std::size_t i = 0; i < reports[0].devices.size(); ++i) {
    const TrackReport& a = reports[0].devices[i].report;
    const TrackReport& b = reports[1].devices[i].report;
    EXPECT_EQ(reports[0].devices[i].surface, reports[1].devices[i].surface);
    EXPECT_DOUBLE_EQ(a.mean_power_dbm, b.mean_power_dbm) << "device " << i;
    EXPECT_DOUBLE_EQ(a.outage_fraction, b.outage_fraction) << "device " << i;
    EXPECT_EQ(a.retune_count, b.retune_count) << "device " << i;
    EXPECT_DOUBLE_EQ(a.mean_delivered_mbps, b.mean_delivered_mbps)
        << "device " << i;
  }
  EXPECT_DOUBLE_EQ(reports[0].mean_outage_fraction,
                   reports[1].mean_outage_fraction);
}

}  // namespace
}  // namespace llama::track
