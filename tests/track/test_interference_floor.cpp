// Satellite coverage: Environment::with_interference's floor composed
// through LinkLayerModel::min_operational_snr and TrackReport outage. A
// rising ambient floor must degrade delivered throughput monotonically and
// drive the loop into outage once the link drops under noise +
// min_operational_snr — and the scene path must agree with the legacy
// single-link LinkBudget path number for number.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/channel/link_budget.h"
#include "src/channel/mobility.h"
#include "src/core/scenarios.h"
#include "src/track/tracking_loop.h"

namespace llama::track {
namespace {

using common::Angle;
using common::PowerDbm;

/// Observes only; never touches the supply or surface.
class NullPolicy final : public RetunePolicy {
 public:
  [[nodiscard]] const char* name() const override { return "null"; }
  PolicyAction on_tick(core::LlamaSystem&, const TickObservation&) override {
    return {};
  }
};

core::SystemConfig floor_config(PowerDbm floor) {
  core::SystemConfig cfg = core::transmissive_mismatch_config(
      /*tx_rx_distance_m=*/1.0, /*tx_power=*/PowerDbm{0.0});
  cfg.rx_antenna =
      channel::Antenna::directional_10dbi(Angle::degrees(50.0));
  cfg.environment = channel::Environment::with_interference(floor);
  return cfg;
}

TrackReport run_at_floor(PowerDbm floor, long ticks = 10) {
  core::LlamaSystem system{floor_config(floor)};
  channel::StaticMount mount{Angle::degrees(50.0)};
  NullPolicy policy;
  TrackingLoop::Options options;
  // The SNR reference IS the ambient floor: this is how the environment's
  // interference composes into the link layer's operational threshold.
  options.noise = floor;
  TrackingLoop loop{system, mount, policy, options};
  return loop.run(ticks);
}

TEST(InterferenceFloor, IncrementalEpisodeEnforcesItsBounds) {
  core::LlamaSystem system{floor_config(PowerDbm{-80.0})};
  channel::StaticMount mount{Angle::degrees(50.0)};
  NullPolicy policy;
  TrackingLoop loop{system, mount, policy, TrackingLoop::Options{}};
  EXPECT_THROW(loop.step(), std::logic_error);   // outside an episode
  EXPECT_THROW(loop.finish(), std::logic_error);
  loop.begin(2);
  EXPECT_THROW(loop.begin(2), std::logic_error);  // episode already in flight
  loop.step();
  loop.step();
  EXPECT_THROW(loop.step(), std::logic_error);   // past the planned length
  const TrackReport report = loop.finish();
  EXPECT_EQ(report.ticks, 2);
}

TEST(InterferenceFloor, PowerFloorComposesMinOperationalSnr) {
  core::LlamaSystem system{floor_config(PowerDbm{-70.0})};
  channel::StaticMount mount{Angle::degrees(50.0)};
  NullPolicy policy;
  TrackingLoop::Options options;
  options.noise = PowerDbm{-70.0};
  TrackingLoop loop{system, mount, policy, options};
  EXPECT_DOUBLE_EQ(
      loop.power_floor().value(),
      (options.noise + options.link_layer.min_operational_snr()).value());
}

TEST(InterferenceFloor, RisingFloorDegradesThroughputMonotonically) {
  const std::vector<double> floors{-95.0, -75.0, -60.0, -45.0, -10.0};
  double prev_delivered = 1e9;
  double prev_outage = -1.0;
  for (double floor : floors) {
    const TrackReport report = run_at_floor(PowerDbm{floor});
    EXPECT_LE(report.mean_delivered_mbps, prev_delivered + 1e-12)
        << "floor " << floor;
    EXPECT_GE(report.outage_fraction, prev_outage) << "floor " << floor;
    prev_delivered = report.mean_delivered_mbps;
    prev_outage = report.outage_fraction;
  }
  // At -10 dBm ambient the ~-24 dBm link sits far under noise +
  // min_operational_snr: hard outage, nothing delivered.
  const TrackReport drowned = run_at_floor(PowerDbm{-10.0});
  EXPECT_DOUBLE_EQ(drowned.outage_fraction, 1.0);
  EXPECT_DOUBLE_EQ(drowned.mean_delivered_mbps, 0.0);
}

TEST(InterferenceFloor, SceneAndLegacyPathsDegradeIdentically) {
  for (double floor : {-90.0, -65.0, -50.0}) {
    const core::SystemConfig cfg = floor_config(PowerDbm{floor});
    core::LlamaSystem system{cfg};
    channel::StaticMount mount{Angle::degrees(50.0)};
    NullPolicy policy;
    TrackingLoop::Options options;
    options.noise = PowerDbm{floor};
    TrackingLoop loop{system, mount, policy, options};
    const TrackReport report = loop.run(4);

    // Legacy single-link chain: LinkBudget -> receiver expected measure.
    const channel::LinkBudget link{
        cfg.tx_antenna,
        cfg.rx_antenna.oriented(Angle::degrees(50.0)),
        cfg.geometry, cfg.environment};
    const radio::Receiver receiver{cfg.receiver, common::Rng{cfg.seed}};
    const PowerDbm legacy = receiver.expected_measure(
        link.received_power_with_surface(cfg.tx_power, cfg.frequency,
                                         system.surface()));
    const double legacy_delivered = options.link_layer.throughput_mbps(
        legacy - options.noise);
    ASSERT_FALSE(report.trace.empty());
    for (const TrackTrace& tick : report.trace) {
      EXPECT_NEAR(tick.power.value(), legacy.value(), 1e-12)
          << "floor " << floor;
      EXPECT_NEAR(tick.delivered_mbps, legacy_delivered, 1e-12)
          << "floor " << floor;
      EXPECT_EQ(tick.outage,
                legacy < options.noise +
                             options.link_layer.min_operational_snr());
    }
  }
}

}  // namespace
}  // namespace llama::track
