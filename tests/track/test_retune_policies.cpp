#include "src/track/retune_policy.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/codebook/compiler.h"
#include "src/core/scenarios.h"
#include "src/track/tracking_loop.h"

namespace llama::track {
namespace {

using common::Angle;
using common::PowerDbm;

core::SystemConfig test_config() {
  core::SystemConfig cfg = core::transmissive_mismatch_config(0.42);
  cfg.tx_antenna = channel::Antenna::iot_dipole(Angle::degrees(0.0));
  cfg.rx_antenna = channel::Antenna::iot_dipole(Angle::degrees(45.0));
  return cfg;
}

codebook::Codebook compile_book(const core::SystemConfig& cfg) {
  codebook::CompilerOptions copts;
  copts.n_orientations = 37;
  return codebook::CodebookCompiler{cfg}.compile(copts);
}

TEST(HysteresisResweep, TunesOnceOnAStaticDeviceThenHolds) {
  core::LlamaSystem system{test_config()};
  channel::StaticMount mount{Angle::degrees(45.0)};
  HysteresisResweep policy;
  TrackingLoop loop{system, mount, policy};
  const TrackReport report = loop.run(15);
  // The first report has no optimum history, so it triggers the initial
  // Algorithm-1 round (N*T^2 = 50 switches = 1 s): ten blacked-out ticks.
  EXPECT_EQ(report.retune_count, 1);
  EXPECT_TRUE(report.trace[0].retuned);
  EXPECT_NEAR(report.trace[0].retune_airtime_s, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(report.trace[0].duty, 0.0);
  EXPECT_NEAR(report.mean_retune_latency_s, 1.0, 1e-9);
  // Once tuned, the static link never degrades: no further sweeps, and the
  // post-blackout ticks run at full duty.
  for (std::size_t i = 1; i < report.trace.size(); ++i)
    EXPECT_FALSE(report.trace[i].retuned) << "tick " << i;
  EXPECT_DOUBLE_EQ(report.trace.back().duty, 1.0);
}

TEST(HysteresisResweep, SerialAndBatchedPathsAgree) {
  channel::ArmSwing::Params swing;
  swing.mean = Angle::degrees(45.0);
  swing.amplitude = Angle::degrees(35.0);
  swing.swing_rate_hz = 0.5;

  TrackReport reports[2];
  for (int k = 0; k < 2; ++k) {
    core::LlamaSystem system{test_config()};
    channel::ArmSwing arm{swing};
    HysteresisResweep::Options opts;
    opts.batched = k == 1;
    HysteresisResweep policy{opts};
    TrackingLoop loop{system, arm, policy};
    reports[k] = loop.run(25);
  }
  ASSERT_EQ(reports[0].trace.size(), reports[1].trace.size());
  EXPECT_EQ(reports[0].retune_count, reports[1].retune_count);
  EXPECT_DOUBLE_EQ(reports[0].retune_airtime_s, reports[1].retune_airtime_s);
  for (std::size_t i = 0; i < reports[0].trace.size(); ++i)
    EXPECT_DOUBLE_EQ(reports[0].trace[i].power.value(),
                     reports[1].trace[i].power.value())
        << "tick " << i;
}

TEST(PeriodicCodebook, RetunesOnTheTimer) {
  const core::SystemConfig cfg = test_config();
  const codebook::Codebook book = compile_book(cfg);
  core::LlamaSystem system{cfg};
  channel::StaticMount mount{Angle::degrees(45.0)};
  PeriodicCodebook::Options opts;
  opts.period_s = 0.25;  // at a 0.1 s tick: retunes at ticks 0, 3, 6, 9
  PeriodicCodebook policy{book, opts};
  TrackingLoop loop{system, mount, policy};
  const TrackReport report = loop.run(10);
  EXPECT_EQ(report.retune_count, 4);
  for (long tick : {0, 3, 6, 9})
    EXPECT_TRUE(report.trace[static_cast<std::size_t>(tick)].retuned)
        << "tick " << tick;
  for (long tick : {1, 2, 4, 5, 7, 8})
    EXPECT_FALSE(report.trace[static_cast<std::size_t>(tick)].retuned)
        << "tick " << tick;
  // One 20 ms supply switch per retune.
  EXPECT_NEAR(report.retune_airtime_s, 4 * 0.02, 1e-9);
}

TEST(PeriodicCodebook, RejectsBadPeriod) {
  const core::SystemConfig cfg = test_config();
  const codebook::Codebook book = compile_book(cfg);
  PeriodicCodebook::Options opts;
  opts.period_s = 0.0;
  EXPECT_THROW((PeriodicCodebook{book, opts}), std::invalid_argument);
}

TEST(PredictiveCodebook, StaticDeviceCostsExactlyOneSwitch) {
  const core::SystemConfig cfg = test_config();
  const codebook::Codebook book = compile_book(cfg);
  core::LlamaSystem system{cfg};
  channel::StaticMount mount{Angle::degrees(70.0)};
  PredictiveCodebook policy{book};
  TrackingLoop loop{system, mount, policy};
  const TrackReport report = loop.run(12);
  EXPECT_EQ(report.retune_count, 1);
  EXPECT_TRUE(report.trace[0].retuned);
  EXPECT_NEAR(report.retune_airtime_s, 0.02, 1e-9);
}

TEST(PredictiveCodebook, RetunesAtTheObservedOrientationOnAJump) {
  // A remount-style discontinuity must not be extrapolated: a 0 -> 90 deg
  // jump would predict 90 + 90 = 180 ≡ 0 deg — the OLD orientation — and
  // program the worst possible bias. The policy detects the jump and
  // retunes at the observed orientation instead.
  struct Remount final : channel::OrientationProcess {
    [[nodiscard]] common::Angle orientation_at(double t_s) override {
      return Angle::degrees(t_s < 0.45 ? 40.0 : 130.0);
    }
  };
  const core::SystemConfig cfg = test_config();
  const codebook::Codebook book = compile_book(cfg);
  core::LlamaSystem system{cfg};
  Remount process;
  PredictiveCodebook policy{book};
  TrackingLoop loop{system, process, policy};
  const TrackReport report = loop.run(10);
  // Tick 5 (t = 0.5) sees the jump: the policy must retune and land within
  // a few dB of the pre-jump corrected power, not in a deep mismatch fade.
  EXPECT_TRUE(report.trace[5].retuned);
  EXPECT_NEAR(report.trace[5].power.value(), report.trace[4].power.value(),
              6.0);
}

TEST(HysteresisResweep, AdoptsTheBoundSystemsControllerOptions) {
  // Unless overridden, the policy must sweep with the system's configured
  // controller options — here T = 3, so the initial round costs
  // N*T^2 = 2*9 = 18 switches (0.36 s), not the default 50 (1 s).
  core::SystemConfig cfg = test_config();
  cfg.controller.sweep.steps_per_axis = 3;
  core::LlamaSystem system{cfg};
  channel::StaticMount mount{Angle::degrees(45.0)};
  HysteresisResweep policy;
  TrackingLoop loop{system, mount, policy};
  const TrackReport report = loop.run(6);
  EXPECT_EQ(report.retune_count, 1);
  EXPECT_NEAR(report.trace[0].retune_airtime_s, 0.36, 1e-9);

  // An explicit option wins over the system's.
  core::LlamaSystem system2{cfg};
  HysteresisResweep::Options opts;
  opts.controller = control::Controller::Options{};  // paper defaults
  HysteresisResweep policy2{opts};
  TrackingLoop loop2{system2, mount, policy2};
  const TrackReport report2 = loop2.run(12);
  EXPECT_NEAR(report2.trace[0].retune_airtime_s, 1.0, 1e-9);
}

TEST(PredictiveCodebook, RejectsNonPositiveHoldLoss) {
  const core::SystemConfig cfg = test_config();
  const codebook::Codebook book = compile_book(cfg);
  PredictiveCodebook::Options opts;
  opts.hold_loss = common::GainDb{0.0};
  EXPECT_THROW((PredictiveCodebook{book, opts}), std::invalid_argument);
}

TEST(PredictiveCodebook, BeatsHysteresisOnOutageAtFarLessAirtime) {
  // The bench_mobile_fleet CI assertion in miniature: on a walking-speed
  // swing the predictive policy must match-or-beat the re-sweep policy's
  // outage while spending >= 10x less supply airtime.
  const core::SystemConfig cfg = test_config();
  const codebook::Codebook book = compile_book(cfg);
  channel::ArmSwing::Params swing;
  swing.mean = Angle::degrees(60.0);
  swing.amplitude = Angle::degrees(35.0);
  swing.swing_rate_hz = 0.5;

  TrackReport hysteresis;
  TrackReport predictive;
  {
    core::LlamaSystem system{cfg};
    channel::ArmSwing arm{swing};
    HysteresisResweep policy;
    TrackingLoop loop{system, arm, policy};
    hysteresis = loop.run(60);
  }
  {
    core::LlamaSystem system{cfg};
    channel::ArmSwing arm{swing};
    PredictiveCodebook policy{book};
    TrackingLoop loop{system, arm, policy};
    predictive = loop.run(60);
  }
  EXPECT_LE(predictive.outage_fraction, hysteresis.outage_fraction);
  ASSERT_GT(predictive.retune_airtime_s, 0.0);
  EXPECT_GE(hysteresis.retune_airtime_s / predictive.retune_airtime_s, 10.0);
}

TEST(CodebookPolicies, BindRejectsAStaleCodebook) {
  // Compile for a different transmit power: structurally valid, wrong hash.
  core::SystemConfig other = test_config();
  other.tx_power = PowerDbm{10.0};
  const codebook::Codebook stale = compile_book(other);

  core::LlamaSystem system{test_config()};
  channel::StaticMount mount{Angle::degrees(45.0)};
  {
    PeriodicCodebook policy{stale};
    TrackingLoop loop{system, mount, policy};
    EXPECT_THROW((void)loop.run(3), codebook::CodebookStaleError);
  }
  {
    PredictiveCodebook policy{stale};
    TrackingLoop loop{system, mount, policy};
    EXPECT_THROW((void)loop.run(3), codebook::CodebookStaleError);
  }
}

}  // namespace
}  // namespace llama::track
