#include "src/track/tracking_loop.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/core/scenarios.h"

namespace llama::track {
namespace {

using common::Angle;
using common::PowerDbm;
using common::Voltage;

/// Policy that never touches the plant.
struct NullPolicy final : RetunePolicy {
  [[nodiscard]] const char* name() const override { return "null"; }
  PolicyAction on_tick(core::LlamaSystem&, const TickObservation&) override {
    return {};
  }
};

/// Policy that issues a fixed number of supply switches on chosen ticks and
/// records when it was consulted.
struct SwitchBurstPolicy final : RetunePolicy {
  long burst_tick = 0;
  int switches = 0;
  std::vector<long> consulted;

  [[nodiscard]] const char* name() const override { return "burst"; }
  PolicyAction on_tick(core::LlamaSystem& system,
                       const TickObservation& obs) override {
    consulted.push_back(obs.tick);
    if (obs.tick != burst_tick) return {};
    for (int i = 0; i < switches; ++i)
      system.supply().set_outputs(Voltage{10.0}, Voltage{10.0});
    PolicyAction action;
    action.retuned = switches > 0;
    return action;
  }
};

core::SystemConfig test_config() {
  core::SystemConfig cfg = core::transmissive_mismatch_config(0.42);
  cfg.tx_antenna = channel::Antenna::iot_dipole(Angle::degrees(0.0));
  cfg.rx_antenna = channel::Antenna::iot_dipole(Angle::degrees(45.0));
  return cfg;
}

TEST(TrackingLoop, RejectsBadArguments) {
  core::LlamaSystem system{test_config()};
  channel::StaticMount mount{Angle::degrees(45.0)};
  NullPolicy policy;
  TrackingLoop::Options opts;
  opts.dt_s = 0.0;
  EXPECT_THROW((TrackingLoop{system, mount, policy, opts}),
               std::invalid_argument);
  TrackingLoop loop{system, mount, policy};
  EXPECT_THROW((void)loop.run(0), std::invalid_argument);
}

TEST(TrackingLoop, StaticDeviceNullPolicyIsFlat) {
  core::LlamaSystem system{test_config()};
  channel::StaticMount mount{Angle::degrees(45.0)};
  NullPolicy policy;
  TrackingLoop loop{system, mount, policy};
  const TrackReport report = loop.run(10);
  ASSERT_EQ(report.trace.size(), 10u);
  EXPECT_EQ(report.ticks, 10);
  EXPECT_NEAR(report.duration_s, 1.0, 1e-12);
  EXPECT_EQ(report.retune_count, 0);
  EXPECT_DOUBLE_EQ(report.retune_airtime_s, 0.0);
  EXPECT_DOUBLE_EQ(report.mean_retune_latency_s, 0.0);
  for (const TrackTrace& tick : report.trace) {
    EXPECT_DOUBLE_EQ(tick.power.value(), report.trace[0].power.value());
    EXPECT_DOUBLE_EQ(tick.duty, 1.0);
    EXPECT_FALSE(tick.retuned);
  }
  EXPECT_DOUBLE_EQ(report.mean_power_dbm, report.trace[0].power.value());
  EXPECT_DOUBLE_EQ(report.min_power_dbm, report.trace[0].power.value());
}

TEST(TrackingLoop, PowerFloorDefaultsToLinkLayerThreshold) {
  core::LlamaSystem system{test_config()};
  channel::StaticMount mount{Angle::degrees(45.0)};
  NullPolicy policy;
  TrackingLoop::Options opts;
  opts.noise = PowerDbm{-62.0};
  TrackingLoop loop{system, mount, policy, opts};
  // BLE 1M's only rate needs 9 dB of SNR.
  EXPECT_NEAR(loop.power_floor().value(), -53.0, 1e-12);

  TrackingLoop::Options explicit_opts;
  explicit_opts.power_floor = PowerDbm{-40.0};
  TrackingLoop loop2{system, mount, policy, explicit_opts};
  EXPECT_NEAR(loop2.power_floor().value(), -40.0, 1e-12);
}

TEST(TrackingLoop, AirtimeIsChargedFromTheSupplyClock) {
  core::LlamaSystem system{test_config()};
  channel::StaticMount mount{Angle::degrees(45.0)};
  SwitchBurstPolicy policy;
  policy.burst_tick = 2;
  policy.switches = 3;  // 3 x 20 ms = 60 ms inside a 100 ms tick
  TrackingLoop loop{system, mount, policy};
  const TrackReport report = loop.run(5);
  EXPECT_NEAR(report.trace[2].retune_airtime_s, 0.06, 1e-12);
  EXPECT_NEAR(report.trace[2].duty, 0.4, 1e-9);
  EXPECT_NEAR(report.retune_airtime_s, 0.06, 1e-12);
  EXPECT_EQ(report.retune_count, 1);
  EXPECT_NEAR(report.mean_retune_latency_s, 0.06, 1e-12);
  // The other ticks are uncharged.
  EXPECT_DOUBLE_EQ(report.trace[1].retune_airtime_s, 0.0);
  EXPECT_DOUBLE_EQ(report.trace[3].duty, 1.0);
}

TEST(TrackingLoop, AirtimeBeyondTheTickBlacksOutFollowingTicks) {
  core::LlamaSystem system{test_config()};
  channel::StaticMount mount{Angle::degrees(45.0)};
  SwitchBurstPolicy policy;
  policy.burst_tick = 0;
  policy.switches = 25;  // 0.5 s of airtime at a 0.1 s tick
  TrackingLoop loop{system, mount, policy};
  const TrackReport report = loop.run(8);
  // Ticks 0-4 are fully consumed by the retune: no traffic, outage.
  for (long i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(report.trace[i].duty, 0.0) << "tick " << i;
    EXPECT_TRUE(report.trace[i].outage) << "tick " << i;
    EXPECT_DOUBLE_EQ(report.trace[i].delivered_mbps, 0.0) << "tick " << i;
  }
  // While busy the policy is not consulted; it resumes at tick 5.
  EXPECT_EQ(policy.consulted, (std::vector<long>{0, 5, 6, 7}));
  EXPECT_DOUBLE_EQ(report.trace[5].duty, 1.0);
  EXPECT_NEAR(report.outage_fraction, 5.0 / 8.0, 1e-12);
}

TEST(TrackingLoop, KeepTraceFalseDropsTicksButKeepsAggregates) {
  core::SystemConfig cfg = test_config();
  channel::ArmSwing::Params swing;
  swing.mean = Angle::degrees(45.0);
  swing.amplitude = Angle::degrees(30.0);
  swing.swing_rate_hz = 0.5;

  TrackReport with_trace;
  TrackReport without_trace;
  for (bool keep : {true, false}) {
    core::LlamaSystem system{cfg};
    channel::ArmSwing arm{swing};
    NullPolicy policy;
    TrackingLoop::Options opts;
    opts.keep_trace = keep;
    TrackingLoop loop{system, arm, policy, opts};
    (keep ? with_trace : without_trace) = loop.run(12);
  }
  EXPECT_EQ(with_trace.trace.size(), 12u);
  EXPECT_TRUE(without_trace.trace.empty());
  EXPECT_DOUBLE_EQ(with_trace.mean_power_dbm, without_trace.mean_power_dbm);
  EXPECT_DOUBLE_EQ(with_trace.outage_fraction, without_trace.outage_fraction);
  EXPECT_DOUBLE_EQ(with_trace.mean_delivered_mbps,
                   without_trace.mean_delivered_mbps);
}

TEST(TrackingLoop, RunsAreDeterministic) {
  core::SystemConfig cfg = test_config();
  channel::ArmSwing::Params swing;
  swing.mean = Angle::degrees(60.0);
  swing.amplitude = Angle::degrees(35.0);
  swing.swing_rate_hz = 0.6;

  TrackReport a;
  TrackReport b;
  for (TrackReport* out : {&a, &b}) {
    core::LlamaSystem system{cfg};
    channel::ArmSwing arm{swing};
    HysteresisResweep policy;
    TrackingLoop loop{system, arm, policy};
    *out = loop.run(20);
  }
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.trace[i].power.value(), b.trace[i].power.value());
    EXPECT_EQ(a.trace[i].retuned, b.trace[i].retuned);
    EXPECT_DOUBLE_EQ(a.trace[i].delivered_mbps, b.trace[i].delivered_mbps);
  }
  EXPECT_DOUBLE_EQ(a.retune_airtime_s, b.retune_airtime_s);
  EXPECT_DOUBLE_EQ(a.outage_fraction, b.outage_fraction);
}

}  // namespace
}  // namespace llama::track
