#!/usr/bin/env python3
"""Header self-containment check.

Compiles every header under src/ standalone (``-fsyntax-only``) so a header
that silently leans on a transitive include — compiling only because every
current consumer happens to include its dependency first — fails here
instead of breaking the next refactor.

Usage:
    check_headers.py --compiler <c++> --include <repo-root> [--define K=V] SRC_DIR
"""
from __future__ import annotations

import argparse
import concurrent.futures
import pathlib
import subprocess
import sys


def check_one(compiler: str, header: pathlib.Path, include: str,
              defines: list[str]) -> tuple[pathlib.Path, str]:
    cmd = [compiler, "-std=c++20", "-fsyntax-only", "-Wall", "-Wextra",
           "-I", include]
    for d in defines:
        cmd += ["-D", d]
    # -x c++: compile the .h as a translation unit, not a precompiled header.
    cmd += ["-x", "c++", str(header)]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    return header, "" if proc.returncode == 0 else proc.stderr.strip()


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--compiler", required=True)
    parser.add_argument("--include", required=True,
                        help="repo root the src/... includes resolve against")
    parser.add_argument("--define", action="append", default=[],
                        help="extra -D macro (repeatable)")
    parser.add_argument("src_dir")
    args = parser.parse_args(argv)

    headers = sorted(pathlib.Path(args.src_dir).rglob("*.h"))
    if not headers:
        print(f"check_headers: no headers under {args.src_dir}",
              file=sys.stderr)
        return 2

    failures = []
    with concurrent.futures.ThreadPoolExecutor() as pool:
        for header, err in pool.map(
                lambda h: check_one(args.compiler, h, args.include,
                                    args.define),
                headers):
            if err:
                failures.append((header, err))

    for header, err in failures:
        print(f"NOT SELF-CONTAINED: {header}\n{err}\n", file=sys.stderr)
    print(f"check_headers: {len(headers) - len(failures)}/{len(headers)} "
          "headers are self-contained")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
