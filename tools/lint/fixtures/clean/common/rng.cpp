// Clean fixture: common/rng is the one home for RNG machinery; the
// path-scoped allowance covers engine declarations and entropy plumbing
// living here. Zero findings.
#include <random>

namespace llama::common {

struct FixtureRng {
  std::mt19937_64 engine_;
  explicit FixtureRng(unsigned long long seed) : engine_(seed) {}
};

}  // namespace llama::common
