// Clean fixture: the PowerSupply instrument model is the one place allowed
// to reference a wall clock — the whole airtime invariant is that all other
// code charges time through it. Path-scoped allowance, zero findings.
#include <chrono>

namespace llama::control {

double instrument_reference_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace llama::control
