// Clean fixture: the deterministic counterparts of every rule's violation.
// Must produce zero findings.
#include <cstddef>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/parallel.h"

namespace llama::deploy {

struct CleanAggregator {
  // Ordered container: iteration order is the key order, deterministic.
  std::map<std::string, double> ordered_weights;
  // Unordered lookup tables are fine as long as results never depend on
  // their iteration order.
  std::unordered_map<std::string, double> index;

  double stable_total() const {
    double total = 0.0;
    for (const auto& kv : ordered_weights) {
      total += kv.second;
    }
    return total;
  }

  double keyed_lookup(const std::string& key) const {
    auto it = index.find(key);
    return it == index.end() ? 0.0 : it->second;
  }
};

std::vector<double> sharded_square(const std::vector<double>& values,
                                   int threads) {
  std::vector<double> out(values.size());
  // Each shard writes only its own output slot, so the result is
  // byte-identical for any thread count.
  common::parallel_for(values.size(), threads, [&](std::size_t i) {
    out[i] = values[i] * values[i];
  });
  return out;
}

// By-value capture shares nothing mutable; no ownership comment needed.
std::size_t counted(std::size_t n, int threads) {
  common::parallel_for(n, threads, [n](std::size_t i) {
    (void)n;
    (void)i;
  });
  return n;
}

}  // namespace llama::deploy
