// Clean fixture for the kernel scope: the idioms a real lane kernel uses —
// lane-wise loops over contiguous SoA storage, calls into the lane-kernel
// API, split re/im complex math. Mentioning "transmission" or "response"
// in comments must not trip kernel-purity, and names that merely CONTAIN
// a banned identifier (lane_response_out, batch_transmission_lanes) are
// fine: only actual calls into the scalar per-cell cascade are impure.
#include <cstddef>
#include <vector>

namespace fixture {

// Evaluates the transmission response for a whole lane of biases at once.
inline void batch_transmission_lanes(const std::vector<double>& tx_re,
                                     const std::vector<double>& tx_im,
                                     std::vector<double>& lane_response_out) {
  const std::size_t n = tx_re.size();
  lane_response_out.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Split re/im magnitude-squared: auto-vectorizable, no per-cell calls.
    lane_response_out[i] = tx_re[i] * tx_re[i] + tx_im[i] * tx_im[i];
  }
}

// A free function named like the scalar API is fine to DEFINE here; the
// rule bans member-call re-entry, not lane-kernel entry points.
inline void axis_s_lanes_like(const std::vector<double>& biases,
                              std::vector<double>& out) {
  out.assign(biases.size(), 0.0);
}

}  // namespace fixture
