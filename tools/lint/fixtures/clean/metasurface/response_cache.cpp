// Clean fixture: the response-cache stats counters are the blessed
// memory_order_relaxed site — pure monotonic counters whose readers only
// ever snapshot. Path-scoped allowance, zero findings.
#include <atomic>
#include <cstdint>

namespace llama::metasurface {

struct FixtureStats {
  std::atomic<std::uint64_t> hits{0};

  void record_hit() { hits.fetch_add(1, std::memory_order_relaxed); }
  std::uint64_t snapshot() const {
    return hits.load(std::memory_order_relaxed);
  }
};

}  // namespace llama::metasurface
