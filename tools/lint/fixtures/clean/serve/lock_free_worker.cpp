// Clean fixture for the serve scope: the idioms a real worker shard uses —
// acquire/release atomics, queue hand-off, yielding — none of which the
// serve-hot-path-blocking rule may flag. Mentioning "lock-free" or
// "unlock" in comments must not trip it either.
#include <atomic>
#include <cstdint>
#include <thread>

namespace fixture {

struct Shard {
  std::atomic<std::uint64_t> served{0};
  std::atomic<bool> closed{false};
};

// The hot path stays lock-free: forwarding, never locking (no .lock()).
inline bool drain_once(Shard& shard) {
  if (shard.closed.load(std::memory_order_acquire)) return false;
  shard.served.fetch_add(1, std::memory_order_acq_rel);
  std::this_thread::yield();
  return true;
}

}  // namespace fixture
