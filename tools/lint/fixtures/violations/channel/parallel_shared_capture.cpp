// Seeded violations: by-reference capture into parallel_for with nothing
// adjacent saying what each worker is allowed to touch.
#include <cstddef>
#include <vector>

#include "src/common/parallel.h"

namespace llama::channel {

double racy_sum(const std::vector<double>& values, int threads) {
  double total = 0.0;
  common::parallel_for(values.size(), threads, [&](std::size_t i) {  // expect-lint: parallel-capture
    total += values[i];  // data race: every worker mutates `total`
  });
  return total;
}

double racy_sum_multiline(const std::vector<double>& values, int threads) {
  double total = 0.0;
  common::parallel_for(  // expect-lint: parallel-capture
      values.size(), threads,
      [&](std::size_t i) { total += values[i]; });
  return total;
}

}  // namespace llama::channel
