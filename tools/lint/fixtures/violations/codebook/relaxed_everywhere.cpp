// Seeded violations: memory_order_relaxed outside the blessed stats
// counters (metasurface/response_cache).
#include <atomic>
#include <cstddef>

namespace llama::codebook {

struct LatticePublisher {
  std::atomic<std::size_t> ready_cells{0};

  void publish_one() {
    // Relaxed on a hand-rolled readiness protocol: readers may observe the
    // count before the cell contents. Exactly what the rule guards.
    ready_cells.fetch_add(1, std::memory_order_relaxed);  // expect-lint: relaxed-atomic
  }

  bool all_ready(std::size_t n) const {
    return ready_cells.load(std::memory_order_relaxed) == n;  // expect-lint: relaxed-atomic
  }
};

}  // namespace llama::codebook
