// Seeded violations: wall-clock sources outside PowerSupply. Every line
// marked expect-lint must be flagged by exactly that rule.
#include <chrono>
#include <ctime>

namespace llama::control {

double sneaky_dwell() {
  auto t0 = std::chrono::steady_clock::now();  // expect-lint: wall-clock
  auto wall = std::chrono::system_clock::now();  // expect-lint: wall-clock
  auto hr = std::chrono::high_resolution_clock::now();  // expect-lint: wall-clock
  (void)wall;
  (void)hr;
  auto t1 = std::chrono::steady_clock::now();  // expect-lint: wall-clock
  return std::chrono::duration<double>(t1 - t0).count();
}

long sneaky_epoch() {
  long seconds = time(nullptr);  // expect-lint: wall-clock
  long ticks = clock();  // expect-lint: wall-clock
  return seconds + ticks;
}

}  // namespace llama::control
