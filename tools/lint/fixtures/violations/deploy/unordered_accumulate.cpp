// Seeded violations: unordered-container iteration feeding accumulation in
// a deploy-path file. Iteration order over a hash table is unspecified, so
// any order-sensitive reduction is nondeterministic.
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace llama::deploy {

struct Aggregator {
  std::unordered_map<std::string, double> weights;
  std::unordered_set<int> active;

  double unstable_total() const {
    double total = 0.0;
    for (const auto& kv : weights) {  // expect-lint: unordered-iter
      total += kv.second;  // float accumulation is order-sensitive
    }
    return total;
  }

  std::vector<int> unstable_order() const {
    std::vector<int> out;
    for (int id : active) {  // expect-lint: unordered-iter
      out.push_back(id);
    }
    return out;
  }

  // Iteration with no accumulation in the body is not flagged: a pure
  // existence scan cannot leak iteration order into a result.
  bool any_negative() const {
    for (const auto& kv : weights) {
      if (kv.second < 0.0) return true;
    }
    return false;
  }
};

}  // namespace llama::deploy
