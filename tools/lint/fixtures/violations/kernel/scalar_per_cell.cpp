// Seeded violations for kernel-purity: every way a kernel could silently
// fall back to the scalar per-cell cascade. A real kernel evaluates whole
// lanes through axis_s_lanes / face_admittance_lanes; calling the scalar
// API per cell reverts the hot path to O(cells) axis solves.
#include <cstddef>
#include <vector>

namespace fixture {

// Even DECLARING the free-name scalar entry points under /kernel/ is
// flagged: the names belong to the scalar cascade, not the lane layer.
struct FakeStack {
  double transmission(double f, double vx, double vy) const;
  double reflection(double f, double vx, double vy) const;
  double response(double f) const;
  double jones_transmission(double f, double vx, double vy) const;   // expect-lint: kernel-purity
  double axis_sparams(double f, double bias, bool y_axis) const;     // expect-lint: kernel-purity
  double axis_transmission(double f, double bias, bool y_axis) const;  // expect-lint: kernel-purity
  double axis_reflection(double f, double bias, bool y_axis) const;  // expect-lint: kernel-purity
};

double planned_response(double f, double vx, double vy);  // expect-lint: kernel-purity

inline void impure_grid(const FakeStack& stack, const std::vector<double>& vxs,
                        const std::vector<double>& vys,
                        std::vector<double>& out) {
  out.clear();
  for (const double vy : vys)
    for (const double vx : vxs)
      out.push_back(stack.transmission(2.44e9, vx, vy));  // expect-lint: kernel-purity
}

inline double impure_cells(const FakeStack* stack, double vx, double vy) {
  double acc = 0.0;
  acc += stack->reflection(2.44e9, vx, vy);              // expect-lint: kernel-purity
  acc += stack->response(2.44e9);                        // expect-lint: kernel-purity
  acc += stack->jones_transmission(2.44e9, vx, vy);      // expect-lint: kernel-purity
  acc += stack->axis_sparams(2.44e9, vx, false);         // expect-lint: kernel-purity
  acc += stack->axis_transmission(2.44e9, vx, false);    // expect-lint: kernel-purity
  acc += stack->axis_reflection(2.44e9, vy, true);       // expect-lint: kernel-purity
  acc += planned_response(2.44e9, vx, vy);               // expect-lint: kernel-purity
  return acc;
}

}  // namespace fixture
