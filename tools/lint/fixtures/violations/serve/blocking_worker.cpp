// Seeded violations for serve-hot-path-blocking: every blocking primitive
// the rule guards against, inside a /serve/ path. A real worker must route
// cross-shard work through the MPMC queues instead.
#include <mutex>
#include <condition_variable>
#include <shared_mutex>

namespace fixture {

struct BadShard {
  std::mutex state_mutex;             // expect-lint: serve-hot-path-blocking
  std::shared_mutex registry_mutex;   // expect-lint: serve-hot-path-blocking
  std::condition_variable wakeup;     // expect-lint: serve-hot-path-blocking
};

inline void serve_locked(BadShard& shard) {
  std::lock_guard<std::mutex> guard(shard.state_mutex);  // expect-lint: serve-hot-path-blocking
}

inline void serve_manual(BadShard& shard) {
  shard.state_mutex.lock();    // expect-lint: serve-hot-path-blocking
  shard.state_mutex.unlock();  // expect-lint: serve-hot-path-blocking
}

inline bool serve_try(BadShard* shard) {
  return shard->state_mutex.try_lock();  // expect-lint: serve-hot-path-blocking
}

}  // namespace fixture
