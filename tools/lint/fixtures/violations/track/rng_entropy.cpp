// Seeded violations: ambient or unseeded randomness outside common/rng.
#include <cstdlib>
#include <random>

namespace llama::track {

double ambient_jitter() {
  std::random_device rd;  // expect-lint: rng
  std::mt19937 gen;  // expect-lint: rng
  std::mt19937_64 gen64{};  // expect-lint: rng
  std::default_random_engine legacy;  // expect-lint: rng
  (void)gen64;
  (void)legacy;
  srand(42);  // expect-lint: rng
  return static_cast<double>(rand()) / RAND_MAX;  // expect-lint: rng
}

// A *seeded* engine is not ambient entropy: the rng rule leaves it to code
// review / common::Rng adoption, so this declaration must NOT be flagged.
std::mt19937_64 seeded_engine(0x11A011A0ULL);

}  // namespace llama::track
