// Waiver fixture: malformed waivers are themselves findings, and a waiver
// suppresses exactly one rule at one site.
#include <chrono>
#include <random>

namespace llama::waivers {

double bad_waivers() {
  // Unknown rule name: the waiver is a bad-waiver finding AND the original
  // wall-clock finding stands.
  auto t0 = std::chrono::steady_clock::now();  // llama-lint: allow(wallclock) typo in rule name; expect-lint: bad-waiver expect-lint: wall-clock

  // A waiver for one rule does not silence a different rule on the same
  // line: rng is waived, wall-clock is still flagged.
  std::random_device rd; auto t1 = std::chrono::steady_clock::now();  // llama-lint: allow(rng) entropy feeds a label only; expect-lint: wall-clock

  return std::chrono::duration<double>(t1 - t0).count() +
         static_cast<double>(rd.entropy());
}

}  // namespace llama::waivers
