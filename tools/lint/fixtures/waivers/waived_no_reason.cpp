// Waiver fixture: a waiver without a reason is a bad-waiver finding and the
// waived rule still fires. Expectations for this file are hardcoded in
// test_llama_lint.py (an inline expect marker would read as the reason).
#include <chrono>

namespace llama::waivers {

double no_reason() {
  // llama-lint: allow(wall-clock)
  auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t0.time_since_epoch()).count();
}

}  // namespace llama::waivers
