// Waiver fixture: each violation below is waived for exactly its rule with
// a reason, trailing or standalone-above. Must produce zero findings.
#include <atomic>
#include <chrono>

namespace llama::waivers {

double bench_probe() {
  auto t0 = std::chrono::steady_clock::now();  // llama-lint: allow(wall-clock) bench-only diagnostic, not airtime
  // llama-lint: allow(wall-clock) standalone waiver covers the next line
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

struct Counter {
  std::atomic<long> n{0};
  void bump() {
    n.fetch_add(1, std::memory_order_relaxed);  // llama-lint: allow(relaxed-atomic) pure stats counter, snapshot readers only
  }
};

}  // namespace llama::waivers
