#!/usr/bin/env python3
"""llama-lint: project-specific invariant linter.

The repo's correctness rests on four hand-enforced invariants:

  1. Determinism  - results are byte-identical for any thread count.
  2. Airtime      - all instrument time is charged through the supply clock.
  3. Randomness   - all stochastic draws are seeded via common/rng or pure
                    hashes; nothing reads ambient entropy.
  4. Atomics      - relaxed memory order is reserved for stats counters.

This linter makes those invariants machine-checked with token/AST-light
rules over src/:

  wall-clock       std::chrono clocks / time() / clock() / gettimeofday /
                   clock_gettime outside the PowerSupply instrument model.
                   Wall time anywhere else bypasses the supply clock that
                   every airtime account is built on.
  rng              std::random_device, rand()/srand(), default_random_engine,
                   or an unseeded engine outside common/rng. Ambient entropy
                   breaks bit-for-bit reproducibility.
  unordered-iter   Range-for over an unordered container feeding accumulation
                   (+=, push_back, insert, min/max, ...) in the
                   deploy/track/codebook/channel paths: iteration order is
                   unspecified, so order-sensitive accumulation is
                   nondeterministic across standard libraries and hash seeds.
  relaxed-atomic   memory_order_relaxed outside the blessed stats counters
                   (metasurface/response_cache). Relaxed ordering on anything
                   load-bearing reorders in exactly the ways TSan cannot
                   always see.
  parallel-capture parallel_for with a by-reference lambda capture and no
                   adjacent per-shard ownership comment. Mutable shared
                   capture is how thread-count-dependent results happen; the
                   comment forces each site to state which slots each shard
                   owns (markers: "writes only", "own slot", "owns its",
                   "own result", "own output", "per-shard").
  serve-hot-path-blocking
                   std::mutex / condition_variable / lock adapters (or their
                   pthread equivalents) anywhere in src/serve. The serving
                   runtime's worker hot path is lock-free BY DESIGN: shards
                   exclusively own their devices' state and cross-shard
                   requests are forwarded through the MPMC queues, so a
                   blocking primitive in src/serve means the ownership
                   partition was broken somewhere.
  kernel-purity    per-cell scalar cascade calls (planned_response,
                   jones_transmission, axis_sparams/axis_transmission/
                   axis_reflection, or .response()/.transmission()/
                   .reflection() member calls) inside the kernel dir. The SoA
                   kernel layer exists to evaluate whole bias planes as
                   lanes; falling back to the scalar per-cell API inside
                   src/kernel silently reverts the hot path to O(cells) axis
                   solves and defeats vectorization. The scalar path stays
                   the golden REFERENCE, called from tests and consumers —
                   never from inside a kernel.

Waivers: a site silences exactly one rule with an inline comment carrying a
reason, either trailing the line or on the line directly above it:

    foo();  // llama-lint: allow(wall-clock) bench-only timing probe
    // llama-lint: allow(rng) entropy feeds a diagnostic label, not physics
    bar();

A waiver with an unknown rule name or an empty reason is itself a finding
(bad-waiver), so suppressions cannot rot silently.

Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

RULES = {
    "wall-clock": "wall-clock time source outside PowerSupply",
    "rng": "ambient/unseeded randomness outside common/rng",
    "unordered-iter": "unordered-container iteration feeding accumulation",
    "relaxed-atomic": "memory_order_relaxed outside blessed stats counters",
    "parallel-capture": ("by-reference parallel_for capture without an "
                         "adjacent per-shard ownership comment"),
    "serve-hot-path-blocking": ("blocking synchronization primitive inside "
                                "the lock-free src/serve worker path"),
    "kernel-purity": ("per-cell scalar cascade call inside the SoA kernel "
                      "layer"),
}

# Files (path substrings, '/'-normalized) where a rule does not apply.
# serve/clock. is the serving runtime's ONE blessed wall-clock site: request
# latency is wall time by definition, and funneling every serve-side read
# through that shim keeps the rest of src/serve accountable to the supply
# clock like everything else.
ALLOWED_PATHS = {
    "wall-clock": ("control/power_supply.", "bench_harness.h",
                   "serve/clock."),
    "rng": ("common/rng.",),
    "relaxed-atomic": ("metasurface/response_cache.",),
}

# unordered-iter only guards the consumer paths named by the invariant;
# elsewhere unordered iteration feeds no cross-thread accumulation.
UNORDERED_SCOPE = ("/deploy/", "/track/", "/codebook/", "/channel/")

WALL_CLOCK_PATTERNS = [
    re.compile(r"std::chrono::steady_clock"),
    re.compile(r"std::chrono::system_clock"),
    re.compile(r"std::chrono::high_resolution_clock"),
    re.compile(r"\bgettimeofday\s*\("),
    re.compile(r"\bclock_gettime\s*\("),
    re.compile(r"(?<![\w.>:])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
    re.compile(r"(?<![\w:.>])clock\s*\(\s*\)"),
]

RNG_PATTERNS = [
    re.compile(r"std::random_device"),
    re.compile(r"(?<![\w:.])rand\s*\(\s*\)"),
    re.compile(r"\bsrand\s*\("),
    re.compile(r"std::default_random_engine"),
    # Engine declared with no seed: `std::mt19937 gen;` / `gen{}` / `gen()`.
    re.compile(r"std::(?:mt19937(?:_64)?|minstd_rand0?|ranlux\w+|knuth_b)"
               r"\s+\w+\s*(?:;|\{\s*\}|\(\s*\))"),
]

UNORDERED_DECL = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{]*>[&\s]+(\w+)")
RANGE_FOR = re.compile(r"\bfor\s*\([^;)]*:\s*&?(\w+(?:\.\w+|->\w+)*)\s*\)")
ACCUMULATION = re.compile(
    r"(\+=|\*=|-=|\|=|&=|\bpush_back\b|\bemplace_back\b|\binsert\b|"
    r"\bemplace\b|\bappend\b|std::min\b|std::max\b|\bmin\(|\bmax\()")

RELAXED = re.compile(r"\bmemory_order_relaxed\b")

# serve-hot-path-blocking guards every file of the serving runtime: the
# ownership partition (device d served only by shard d % n_shards) makes
# blocking primitives unnecessary, so any appearance is a design regression.
SERVE_SCOPE = ("/serve/",)
SERVE_BLOCKING_PATTERNS = [
    re.compile(r"std::(?:recursive_|timed_|recursive_timed_|shared_)?mutex\b"),
    re.compile(r"std::condition_variable(?:_any)?\b"),
    re.compile(r"std::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"),
    re.compile(r"\bpthread_(?:mutex|cond|rwlock)\w*"),
    re.compile(r"(?:\.|->)\s*(?:try_)?lock\s*\("),
    re.compile(r"(?:\.|->)\s*unlock\s*\("),
]

# kernel-purity guards every file under a /kernel/ directory: kernels must
# consume plan/lane data, never re-enter the scalar per-cell cascade API.
KERNEL_SCOPE = ("/kernel/",)
KERNEL_SCALAR_PATTERNS = [
    re.compile(r"\bplanned_response\s*\("),
    re.compile(r"\bjones_transmission\s*\("),
    re.compile(r"\baxis_sparams\s*\("),
    re.compile(r"\baxis_transmission\s*\("),
    re.compile(r"\baxis_reflection\s*\("),
    re.compile(r"(?:\.|->)\s*response\s*\("),
    re.compile(r"(?:\.|->)\s*transmission\s*\("),
    re.compile(r"(?:\.|->)\s*reflection\s*\("),
]

PARALLEL_FOR = re.compile(r"\bparallel_for\s*(?:<[^>]*>)?\s*\(")
BYREF_CAPTURE = re.compile(r"\[\s*&")
OWNERSHIP_MARKERS = ("writes only", "own slot", "owns its", "own result",
                     "own output", "per-shard")
OWNERSHIP_LOOKBACK = 10  # comment lines scanned above a parallel_for site

WAIVER = re.compile(r"//\s*llama-lint:\s*allow\(([^)]*)\)\s*(.*)$")

LINE_COMMENT = re.compile(r"//.*$")


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_block_comments(lines: list[str]) -> list[str]:
    """Blanks /* */ comment spans (preserving line structure) so patterns
    never match commented-out code. Line comments are preserved here: the
    waiver and ownership scans read them; code scans strip them per-line."""
    out = []
    in_block = False
    for line in lines:
        buf = []
        i = 0
        while i < len(line):
            if not in_block and line.startswith("/*", i):
                in_block = True
                i += 2
            elif in_block and line.startswith("*/", i):
                in_block = False
                i += 2
            elif in_block:
                i += 1
            elif line.startswith("//", i):
                buf.append(line[i:])
                break
            else:
                buf.append(line[i])
                i += 1
        out.append("".join(buf))
    return out


def code_of(line: str) -> str:
    """The non-comment part of a line."""
    return LINE_COMMENT.sub("", line)


def comment_of(line: str) -> str:
    m = re.search(r"//(.*)$", line)
    return m.group(1) if m else ""


def parse_waivers(lines: list[str], findings: list[Finding],
                  path: Path) -> dict[int, str]:
    """Maps 1-based line number -> waived rule. A standalone waiver comment
    covers the next line; a trailing waiver covers its own line."""
    waived: dict[int, str] = {}
    for i, line in enumerate(lines, start=1):
        m = WAIVER.search(line)
        if not m:
            continue
        rule = m.group(1).strip()
        reason = m.group(2).strip()
        if rule not in RULES:
            findings.append(Finding(
                path, i, "bad-waiver",
                f"waiver names unknown rule '{rule}' "
                f"(known: {', '.join(sorted(RULES))})"))
            continue
        if not reason:
            findings.append(Finding(
                path, i, "bad-waiver",
                f"waiver for '{rule}' has no reason"))
            continue
        standalone = code_of(line).strip() == ""
        waived[i + 1 if standalone else i] = rule
    return waived


def path_allows(rule: str, norm_path: str) -> bool:
    return any(frag in norm_path for frag in ALLOWED_PATHS.get(rule, ()))


def scan_file(path: Path, extra_unordered: set[str] | None = None,
              ) -> tuple[list[Finding], set[str]]:
    """Lints one file. Returns (findings, unordered container names declared
    here) so a .cpp scan can fold in its header's member declarations."""
    try:
        raw = path.read_text(encoding="utf-8", errors="replace").splitlines()
    except OSError as err:
        return [Finding(path, 0, "io", str(err))], set()

    findings: list[Finding] = []
    lines = strip_block_comments(raw)
    waived = parse_waivers(lines, findings, path)
    norm = str(path).replace("\\", "/")

    unordered_names: set[str] = set(extra_unordered or ())
    for line in lines:
        code = code_of(line)
        for m in UNORDERED_DECL.finditer(code):
            unordered_names.add(m.group(1))

    def report(lineno: int, rule: str, message: str) -> None:
        if waived.get(lineno) == rule:
            return
        findings.append(Finding(path, lineno, rule, message))

    in_scope_unordered = any(frag in norm for frag in UNORDERED_SCOPE)

    for i, line in enumerate(lines, start=1):
        code = code_of(line)

        if not path_allows("wall-clock", norm):
            for pat in WALL_CLOCK_PATTERNS:
                if pat.search(code):
                    report(i, "wall-clock",
                           "wall-clock source outside PowerSupply/bench "
                           "harness; charge time through the supply clock")
                    break

        if not path_allows("rng", norm):
            for pat in RNG_PATTERNS:
                if pat.search(code):
                    report(i, "rng",
                           "ambient or unseeded randomness; draw through a "
                           "seeded common::Rng or a pure hash")
                    break

        if not path_allows("relaxed-atomic", norm) and RELAXED.search(code):
            report(i, "relaxed-atomic",
                   "memory_order_relaxed outside the blessed stats "
                   "counters; use seq_cst or bless the site with a waiver")

        if any(frag in norm for frag in KERNEL_SCOPE):
            for pat in KERNEL_SCALAR_PATTERNS:
                if pat.search(code):
                    report(i, "kernel-purity",
                           "scalar per-cell cascade call inside the kernel "
                           "layer; evaluate through the lane kernels "
                           "(axis_s_lanes / face_admittance_lanes) and keep "
                           "the scalar path as the external golden "
                           "reference")
                    break

        if any(frag in norm for frag in SERVE_SCOPE):
            for pat in SERVE_BLOCKING_PATTERNS:
                if pat.search(code):
                    report(i, "serve-hot-path-blocking",
                           "blocking primitive in src/serve; the worker hot "
                           "path is lock-free by the shard-ownership rule "
                           "(forward cross-shard requests, never lock)")
                    break

        if in_scope_unordered and unordered_names:
            m = RANGE_FOR.search(code)
            if m:
                target = m.group(1).split(".")[0].split("->")[0]
                if target in unordered_names and _accumulates_below(lines, i):
                    report(i, "unordered-iter",
                           f"iteration over unordered container '{target}' "
                           "feeds accumulation; iterate a sorted snapshot "
                           "or an index instead")

        if PARALLEL_FOR.search(code):
            lam = _lambda_text(lines, i)
            if BYREF_CAPTURE.search(lam) and not _has_ownership_comment(
                    raw, i):
                report(i, "parallel-capture",
                       "by-reference capture into parallel_for without an "
                       "adjacent per-shard ownership comment (say which "
                       "slots each shard writes)")

    return findings, unordered_names


def _accumulates_below(lines: list[str], lineno: int, window: int = 12) -> bool:
    """True when the loop starting at `lineno` (1-based) accumulates within
    its body (approximated as the next `window` lines)."""
    for j in range(lineno - 1, min(len(lines), lineno - 1 + window)):
        if ACCUMULATION.search(code_of(lines[j])):
            return True
    return False


def _lambda_text(lines: list[str], lineno: int, window: int = 3) -> str:
    """The call site plus a couple of lines, enough to see the capture list
    of a lambda that starts on a continuation line."""
    return " ".join(code_of(l)
                    for l in lines[lineno - 1:lineno - 1 + window])


def _has_ownership_comment(raw: list[str], lineno: int) -> bool:
    lo = max(0, lineno - 1 - OWNERSHIP_LOOKBACK)
    for line in raw[lo:lineno]:
        comment = comment_of(line).lower()
        if any(marker in comment for marker in OWNERSHIP_MARKERS):
            return True
    return False


def collect_files(roots: list[str]) -> list[Path]:
    files: list[Path] = []
    for root in roots:
        p = Path(root)
        if p.is_file():
            files.append(p)
        elif p.is_dir():
            files.extend(sorted(p.rglob("*.h")))
            files.extend(sorted(p.rglob("*.cpp")))
        else:
            print(f"llama-lint: no such path: {root}", file=sys.stderr)
            sys.exit(2)
    return files


def lint_paths(roots: list[str]) -> list[Finding]:
    files = collect_files(roots)
    # Headers first, keyed by (dir, stem): a .cpp inherits its paired
    # header's unordered-container member names.
    header_decls: dict[tuple[str, str], set[str]] = {}
    findings: list[Finding] = []
    for path in [f for f in files if f.suffix == ".h"]:
        fs, names = scan_file(path)
        findings.extend(fs)
        header_decls[(str(path.parent), path.stem)] = names
    for path in [f for f in files if f.suffix == ".cpp"]:
        extra = header_decls.get((str(path.parent), path.stem))
        fs, _ = scan_file(path, extra_unordered=extra)
        findings.extend(fs)
    return findings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="llama-lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*", help="files or directories")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule names and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, desc in sorted(RULES.items()):
            print(f"{rule:18} {desc}")
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        return 2

    findings = lint_paths(args.paths)
    for f in findings:
        print(f)
    if findings:
        print(f"llama-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
