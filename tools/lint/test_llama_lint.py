#!/usr/bin/env python3
"""Self-test for llama_lint.py against the seeded fixtures.

Checks, per the lint contract:
  - every line marked `expect-lint: <rule>` in fixtures/violations and
    fixtures/waivers is flagged with exactly that rule,
  - no unmarked line is flagged (no false positives inside fixtures),
  - every file under fixtures/clean produces zero findings,
  - a well-formed waiver suppresses exactly one rule at one site
    (fixtures/waivers/waived_ok.cpp -> zero findings),
  - a reason-less waiver is a bad-waiver finding and the waived rule still
    fires (fixtures/waivers/waived_no_reason.cpp, hardcoded expectations).

Exit status: 0 on success, 1 on any mismatch.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import llama_lint  # noqa: E402

FIXTURES = Path(__file__).resolve().parent / "fixtures"
EXPECT = re.compile(r"expect-lint:\s*([\w-]+)")


def expected_findings(path: Path) -> set[tuple[int, str]]:
    expect: set[tuple[int, str]] = set()
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        for rule in EXPECT.findall(line):
            expect.add((lineno, rule))
    return expect


def actual_findings(path: Path) -> set[tuple[int, str]]:
    return {(f.line, f.rule) for f in llama_lint.lint_paths([str(path)])}


def check_marked(path: Path, failures: list[str]) -> None:
    expect = expected_findings(path)
    actual = actual_findings(path)
    for miss in sorted(expect - actual):
        failures.append(f"{path.name}:{miss[0]}: seeded [{miss[1]}] "
                        "violation was NOT flagged")
    for extra in sorted(actual - expect):
        failures.append(f"{path.name}:{extra[0]}: unexpected [{extra[1]}] "
                        "finding")


def main() -> int:
    failures: list[str] = []

    violation_files = sorted((FIXTURES / "violations").rglob("*.cpp"))
    clean_files = sorted((FIXTURES / "clean").rglob("*.cpp"))
    assert violation_files, "no violation fixtures found"
    assert clean_files, "no clean fixtures found"

    for path in violation_files:
        expect = expected_findings(path)
        if not expect:
            failures.append(f"{path.name}: violation fixture has no "
                            "expect-lint markers")
        check_marked(path, failures)

    for path in clean_files:
        for lineno, rule in sorted(actual_findings(path)):
            failures.append(f"{path.name}:{lineno}: clean fixture flagged "
                            f"[{rule}]")

    # Well-formed waivers silence exactly their rule at their site.
    check_marked(FIXTURES / "waivers" / "waived_ok.cpp", failures)
    # Malformed waivers: unknown rule / cross-rule on one line.
    check_marked(FIXTURES / "waivers" / "waived_bad.cpp", failures)

    # Reason-less waiver: bad-waiver at the waiver line (9), and the
    # wall-clock violation on the next line (10) still fires.
    no_reason = FIXTURES / "waivers" / "waived_no_reason.cpp"
    actual = actual_findings(no_reason)
    expected = {(9, "bad-waiver"), (10, "wall-clock")}
    if actual != expected:
        failures.append(f"{no_reason.name}: expected {sorted(expected)}, "
                        f"got {sorted(actual)}")

    # Every rule must be exercised by at least one seeded violation.
    seeded_rules = set()
    for path in violation_files:
        seeded_rules |= {rule for _, rule in expected_findings(path)}
    for rule in llama_lint.RULES:
        if rule not in seeded_rules:
            failures.append(f"rule [{rule}] has no seeded violation fixture")

    if failures:
        for msg in failures:
            print(f"FAIL: {msg}")
        print(f"llama-lint self-test: {len(failures)} failure(s)")
        return 1
    n_files = len(violation_files) + len(clean_files) + 3
    print(f"llama-lint self-test: OK ({n_files} fixtures)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
